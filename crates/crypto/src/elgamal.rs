//! ElGamal encryption and the hybrid "ElGamal/AES" construction I2P calls
//! *garlic encryption* (Hoang et al. §2.1.1).
//!
//! A garlic message is end-to-end encrypted by the originator to the
//! destination's public key: a random session key encrypts the payload with
//! a symmetric cipher, and the session key itself is ElGamal-encrypted to
//! the recipient. We mirror that construction with ChaCha20 as the
//! symmetric layer ([`ElGamalPublic::seal`] / [`ElGamalKeyPair::open`]).

use crate::chacha20::ChaCha20;
use crate::dh::{inv_mod, mul_mod, pow_mod, GENERATOR, MODULUS};
use crate::rng::DetRng;
use crate::sha256::sha256;

/// An ElGamal public key (`y = g^x`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ElGamalPublic(pub u64);

/// An ElGamal key pair.
#[derive(Clone, Debug)]
pub struct ElGamalKeyPair {
    secret: u64,
    /// Public element.
    pub public: ElGamalPublic,
}

/// A raw ElGamal ciphertext pair `(c1, c2)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElGamalCiphertext {
    /// `g^k`.
    pub c1: u64,
    /// `m · y^k`.
    pub c2: u64,
}

/// A sealed (hybrid-encrypted) garlic payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    /// ElGamal encryption of the symmetric session scalar.
    pub header: ElGamalCiphertext,
    /// ChaCha20-encrypted payload.
    pub body: Vec<u8>,
}

impl ElGamalKeyPair {
    /// Derives a key pair from secret material (reduced into the group).
    pub fn from_secret_material(material: u64) -> Self {
        let secret = 2 + material % (MODULUS - 3);
        ElGamalKeyPair { secret, public: ElGamalPublic(pow_mod(GENERATOR, secret, MODULUS)) }
    }

    /// Decrypts a raw group-element message.
    pub fn decrypt(&self, ct: ElGamalCiphertext) -> u64 {
        let s = pow_mod(ct.c1, self.secret, MODULUS);
        mul_mod(ct.c2, inv_mod(s, MODULUS), MODULUS)
    }

    /// Opens a [`SealedBox`], returning the plaintext, or `None` if the
    /// integrity tag embedded in the body does not verify.
    pub fn open(&self, sealed: &SealedBox) -> Option<Vec<u8>> {
        let scalar = self.decrypt(sealed.header);
        let key = session_key(scalar);
        let mut body = sealed.body.clone();
        ChaCha20::xor(&key, &NONCE, &mut body);
        if body.len() < 8 {
            return None;
        }
        let (payload, tag) = body.split_at(body.len() - 8);
        let expect = sha256(payload);
        if tag != &expect[..8] {
            return None;
        }
        Some(payload.to_vec())
    }
}

const NONCE: [u8; 12] = *b"i2p-garlic!!";

fn session_key(scalar: u64) -> [u8; 32] {
    let mut material = [0u8; 16];
    material[..8].copy_from_slice(&scalar.to_le_bytes());
    material[8..].copy_from_slice(b"sess-key");
    sha256(&material)
}

impl ElGamalPublic {
    /// Encrypts a raw group element `m ∈ [1, p−1]`.
    pub fn encrypt(&self, m: u64, rng: &mut DetRng) -> ElGamalCiphertext {
        debug_assert!((1..MODULUS).contains(&m));
        let k = 2 + rng.next_u64() % (MODULUS - 3);
        ElGamalCiphertext {
            c1: pow_mod(GENERATOR, k, MODULUS),
            c2: mul_mod(m, pow_mod(self.0, k, MODULUS), MODULUS),
        }
    }

    /// Seals `payload` to this key: hybrid ElGamal + ChaCha20 with an
    /// 8-byte truncated-SHA256 integrity tag (garlic-style).
    pub fn seal(&self, payload: &[u8], rng: &mut DetRng) -> SealedBox {
        let scalar = 1 + rng.next_u64() % (MODULUS - 2);
        let header = self.encrypt(scalar, rng);
        let key = session_key(scalar);
        let mut body = Vec::with_capacity(payload.len() + 8);
        body.extend_from_slice(payload);
        let tag = sha256(payload);
        body.extend_from_slice(&tag[..8]);
        ChaCha20::xor(&key, &NONCE, &mut body);
        SealedBox { header, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let kp = ElGamalKeyPair::from_secret_material(0x1234_5678);
        let mut rng = DetRng::new(1);
        for m in [1u64, 42, MODULUS - 1, 999_999_937] {
            let ct = kp.public.encrypt(m, &mut rng);
            assert_eq!(kp.decrypt(ct), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = ElGamalKeyPair::from_secret_material(9);
        let mut rng = DetRng::new(2);
        let a = kp.public.encrypt(77, &mut rng);
        let b = kp.public.encrypt(77, &mut rng);
        assert_ne!(a, b);
        assert_eq!(kp.decrypt(a), kp.decrypt(b));
    }

    #[test]
    fn seal_open_roundtrip() {
        let kp = ElGamalKeyPair::from_secret_material(0xABCDEF);
        let mut rng = DetRng::new(3);
        let payload = b"garlic clove: delivery instructions + message".to_vec();
        let sealed = kp.public.seal(&payload, &mut rng);
        assert_ne!(sealed.body, payload);
        assert_eq!(kp.open(&sealed).as_deref(), Some(payload.as_slice()));
    }

    #[test]
    fn open_with_wrong_key_fails() {
        let kp = ElGamalKeyPair::from_secret_material(111);
        let other = ElGamalKeyPair::from_secret_material(222);
        let mut rng = DetRng::new(4);
        let sealed = kp.public.seal(b"secret", &mut rng);
        assert_eq!(other.open(&sealed), None);
    }

    #[test]
    fn tampering_detected() {
        let kp = ElGamalKeyPair::from_secret_material(333);
        let mut rng = DetRng::new(5);
        let mut sealed = kp.public.seal(b"authentic", &mut rng);
        sealed.body[0] ^= 1;
        assert_eq!(kp.open(&sealed), None);
    }

    #[test]
    fn empty_payload() {
        let kp = ElGamalKeyPair::from_secret_material(444);
        let mut rng = DetRng::new(6);
        let sealed = kp.public.seal(b"", &mut rng);
        assert_eq!(kp.open(&sealed).as_deref(), Some(&b""[..]));
    }
}
