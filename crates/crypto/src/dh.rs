//! Diffie–Hellman over a simulation-grade prime-field group.
//!
//! The group is `Z_p^*` with the Mersenne prime `p = 2^61 − 1` and
//! generator `g = 37` (verified to be a primitive root by the unit tests,
//! which check `g^((p−1)/f) ≠ 1` for every prime factor `f` of `p − 1`).
//!
//! The NTCP-style transport (see `i2p-transport`) performs a DH exchange in
//! its fixed-size handshake, mirroring the real NTCP handshake whose four
//! messages have the fingerprintable lengths 288/304/448/48 bytes
//! (Hoang et al. §2.2.2).

use crate::sha256::sha256;

/// The group modulus: the Mersenne prime `2^61 − 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;
/// The group generator (a primitive root modulo [`MODULUS`]).
pub const GENERATOR: u64 = 37;

/// Modular multiplication in `Z_p` using 128-bit intermediates.
#[inline]
pub fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    ((a as u128 * b as u128) % p as u128) as u64
}

/// Modular exponentiation `base^exp mod p` (square-and-multiply).
pub fn pow_mod(mut base: u64, mut exp: u64, p: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, p);
        }
        base = mul_mod(base, base, p);
        exp >>= 1;
    }
    acc
}

/// Modular inverse via Fermat's little theorem (`p` prime, `a ≠ 0`).
pub fn inv_mod(a: u64, p: u64) -> u64 {
    debug_assert!(a % p != 0, "zero has no inverse");
    pow_mod(a, p - 2, p)
}

/// A DH public key (`g^x mod p`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DhPublic(pub u64);

/// A DH key pair.
#[derive(Clone, Debug)]
pub struct DhKeyPair {
    secret: u64,
    /// The public element `g^secret`.
    pub public: DhPublic,
}

/// A derived shared secret, hashed to 32 bytes for use as a symmetric key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedSecret(pub [u8; 32]);

impl DhKeyPair {
    /// Derives a key pair from 8 bytes of secret material.
    ///
    /// The secret is reduced into `[2, p−2]`; callers supply randomness
    /// from their [`crate::DetRng`] stream.
    pub fn from_secret_material(material: u64) -> Self {
        let secret = 2 + material % (MODULUS - 3);
        let public = DhPublic(pow_mod(GENERATOR, secret, MODULUS));
        DhKeyPair { secret, public }
    }

    /// Computes the shared secret with the peer's public element.
    pub fn shared(&self, other: DhPublic) -> SharedSecret {
        let point = pow_mod(other.0, self.secret, MODULUS);
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&point.to_le_bytes());
        material[8..].copy_from_slice(b"i2p-ntcp");
        SharedSecret(sha256(&material))
    }
}

impl SharedSecret {
    /// View as a ChaCha20 key.
    pub fn as_key(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Prime factors of `p − 1 = 2^61 − 2`.
    const FACTORS: [u64; 12] = [2, 3, 5, 7, 11, 13, 31, 41, 61, 151, 331, 1321];

    #[test]
    fn factorization_of_group_order_is_complete() {
        let mut n: u128 = (MODULUS - 1) as u128;
        for f in FACTORS {
            while n % f as u128 == 0 {
                n /= f as u128;
            }
        }
        assert_eq!(n, 1, "FACTORS must cover p-1 completely");
    }

    #[test]
    fn generator_is_primitive_root() {
        for f in FACTORS {
            let e = (MODULUS - 1) / f;
            assert_ne!(
                pow_mod(GENERATOR, e, MODULUS),
                1,
                "generator has order dividing (p-1)/{f}"
            );
        }
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1_000_003), 1024);
        assert_eq!(pow_mod(5, 0, 97), 1);
        assert_eq!(pow_mod(0, 5, 97), 0);
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(pow_mod(123456789, MODULUS - 1, MODULUS), 1);
    }

    #[test]
    fn inverse_is_inverse() {
        for a in [1u64, 2, 12345, MODULUS - 2] {
            let inv = inv_mod(a, MODULUS);
            assert_eq!(mul_mod(a, inv, MODULUS), 1);
        }
    }

    #[test]
    fn dh_agreement() {
        let alice = DhKeyPair::from_secret_material(0xDEADBEEF);
        let bob = DhKeyPair::from_secret_material(0xC0FFEE);
        assert_eq!(alice.shared(bob.public), bob.shared(alice.public));
        let eve = DhKeyPair::from_secret_material(0xBAD);
        assert_ne!(alice.shared(bob.public), alice.shared(eve.public));
    }
}
