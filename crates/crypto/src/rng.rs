//! Deterministic, splittable randomness for the simulator.
//!
//! Every experiment in the paper reproduction is driven by a single `u64`
//! seed. Subsystems (population generator, churn model, tunnel peer
//! selection, transport jitter, …) each get their own [`DetRng`] stream via
//! [`DetRng::fork`], so adding randomness consumption in one subsystem
//! never perturbs another — a property the calibration constants in
//! `i2p_sim::params` rely on.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, both
//! implemented here (public-domain algorithms by Blackman & Vigna).

/// SplitMix64 step; used for seeding and forking.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ random-number generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    #[inline]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child stream labelled by `label`.
    ///
    /// Forking is stable: the child depends only on the parent's *seed
    /// material*, not on how much the parent has been used — callers fork
    /// all subsystem streams up front from a root RNG.
    #[inline]
    pub fn fork(&self, label: u64) -> Self {
        // Mix the label into the state through SplitMix64 so that labels
        // 0,1,2,… yield well-separated streams.
        let mut sm = self.s[0] ^ self.s[2] ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's method; `bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free for simulation purposes: 128-bit multiply-shift.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(1e-15);
        -mean * u.ln()
    }

    /// Weibull-distributed value with shape `k` and scale `lambda`.
    ///
    /// The churn model (Hoang et al. §5.2.1) uses Weibull peer-longevity
    /// distributions; see `i2p-sim/src/params.rs` for the fitted
    /// parameters.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        let u = self.next_f64().max(1e-15);
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Log-normal with parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Standard normal via Box–Muller (one value; the pair's twin is
    /// discarded for simplicity).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-15);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Poisson-distributed count with the given `mean` (Knuth for small
    /// means, normal approximation above 30 to stay O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let v = mean + mean.sqrt() * self.standard_normal();
            return v.max(0.0).round() as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Gamma-distributed value with the given `shape` and `scale`
    /// (Marsaglia–Tsang, with the standard `shape < 1` boost). The
    /// observation model draws per-peer visibility weights from a Gamma
    /// distribution (see `i2p-sim/src/params.rs`).
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        if shape < 1.0 {
            let u = self.next_f64().max(1e-15);
            return self.gamma(shape + 1.0, scale) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.next_f64().max(1e-15);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * scale;
            }
        }
    }

    /// Zipf-like rank sampler over `n` items with exponent `s`:
    /// `P(rank=k) ∝ 1/(k+1)^s`. Used by the geography model for the long
    /// tail of countries/ASes.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF on a precomputable-but-small harmonic sum; n is at
        // most a few hundred in our models, so a linear scan is fine.
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.next_f64() * norm;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(s);
            if u <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (floyd's algorithm when
    /// k << n, shuffle otherwise).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            return all;
        }
        let mut chosen = std::collections::HashSet::with_capacity(k); // i2plint: allow(nondet-hash) -- membership-only scratch set; iteration order is never observed
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j as u64 + 1) as usize;
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_under_parent_use() {
        let parent = DetRng::new(7);
        let mut used = parent.clone();
        for _ in 0..10 {
            used.next_u64();
        }
        // fork depends on seed material only, so forking before/after use
        // of a *clone* is identical; (the parent itself is not mutated by
        // fork).
        let mut c1 = parent.fork(3);
        let mut c2 = parent.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent.fork(4);
        assert_ne!(parent.fork(3).next_u64(), c3.next_u64());
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = DetRng::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            let v = r.below(10) as usize;
            counts[v] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of tolerance");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weibull_median_close() {
        // Median of Weibull(k, λ) is λ·ln(2)^(1/k).
        let mut r = DetRng::new(13);
        let (k, lam) = (0.7086, 15.34);
        let mut v: Vec<f64> = (0..10_001).map(|_| r.weibull(k, lam)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[5000];
        let expected = lam * (2.0f64.ln()).powf(1.0 / k);
        assert!((med - expected).abs() / expected < 0.05, "median {med} vs {expected}");
    }

    #[test]
    fn poisson_mean_close() {
        let mut r = DetRng::new(17);
        for mean in [0.5, 4.0, 50.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| r.poisson(mean)).sum();
            let got = sum as f64 / n as f64;
            assert!((got - mean).abs() / mean < 0.05, "mean {mean} got {got}");
        }
    }

    #[test]
    fn gamma_mean_and_variance_close() {
        let mut r = DetRng::new(19);
        for (k, theta) in [(0.5, 2.0), (2.0, 1.0), (9.0, 0.5)] {
            let n = 30_000;
            let v: Vec<f64> = (0..n).map(|_| r.gamma(k, theta)).collect();
            let mean: f64 = v.iter().sum::<f64>() / n as f64;
            let var: f64 = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let (em, ev) = (k * theta, k * theta * theta);
            assert!((mean - em).abs() / em < 0.05, "gamma({k},{theta}) mean {mean}");
            assert!((var - ev).abs() / ev < 0.15, "gamma({k},{theta}) var {var}");
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = DetRng::new(21);
        for (n, k) in [(10usize, 10usize), (1000, 5), (50, 25)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k.min(n));
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), s.len());
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = DetRng::new(23);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[r.zipf(5, 1.0)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
