//! # i2p-crypto — cryptographic primitives for the i2pscope emulator
//!
//! From-scratch implementations of every primitive the emulated I2P stack
//! needs:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (used for router hashes and the daily
//!   netDb *routing keys*, see Hoang et al. §2.1.2).
//! * [`hmac`] — HMAC-SHA256 (session MACs in the NTCP-style transport).
//! * [`chacha20`] — the ChaCha20 stream cipher, standing in for the
//!   AES-256/CBC layer I2P uses inside garlic ("ElGamal/AES") encryption.
//! * [`elgamal`] — ElGamal over a simulation-grade group (a 61-bit safe
//!   prime); it exercises the real encrypt-to-router-key code path at
//!   simulation cost.
//! * [`dh`] — Diffie-Hellman over the same group (NTCP session
//!   establishment).
//! * [`rng`] — a small, fast, splittable deterministic RNG
//!   (SplitMix64 + xoshiro256++) so that every subsystem gets an
//!   independent, reproducible randomness stream.
//!
//! ## Security disclaimer
//!
//! The asymmetric primitives use a deliberately tiny group so that a
//! 32 000-router, 90-day simulation stays cheap. They are **not** secure
//! and must never be used outside this testbed. The symmetric primitives
//! (SHA-256, HMAC, ChaCha20) are real, test-vector-checked
//! implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod dh;
pub mod elgamal;
pub mod hmac;
pub mod rng;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use dh::{DhKeyPair, DhPublic, SharedSecret};
pub use elgamal::{ElGamalCiphertext, ElGamalKeyPair, ElGamalPublic};
pub use hmac::hmac_sha256;
pub use rng::DetRng;
pub use sha256::{sha256, Sha256};
