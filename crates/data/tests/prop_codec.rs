//! Property tests for the `i2p_data::codec` Writer/Reader primitives.
//!
//! Until now only `routerinfo.rs` had a roundtrip test; the snapshot
//! store (the `i2p-store` crate) serializes every segment through these
//! primitives, so each one gets its own write→read roundtrip property,
//! including the varint and delta-id-run helpers the store leans on.

use i2p_data::codec::{DecodeError, Reader, Writer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scalars_roundtrip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>()) {
        let mut w = Writer::new();
        w.u8(a);
        w.u16(b);
        w.u32(c);
        w.u64(d);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), 1 + 2 + 4 + 8);
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.u8("a").unwrap(), a);
        prop_assert_eq!(r.u16("b").unwrap(), b);
        prop_assert_eq!(r.u32("c").unwrap(), c);
        prop_assert_eq!(r.u64("d").unwrap(), d);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn raw_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut w = Writer::new();
        w.bytes(&data);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.bytes(data.len(), "raw").unwrap(), &data[..]);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn varint_roundtrips_minimally(v in any::<u64>(), small in 0u64..128) {
        for value in [v, small, v >> 32, v >> 56] {
            let mut w = Writer::new();
            w.varint(value);
            let bytes = w.into_bytes();
            // LEB128 length: ceil(bits/7), at least 1, at most 10.
            let expect_len = (64 - value.leading_zeros()).div_ceil(7).max(1) as usize;
            prop_assert_eq!(bytes.len(), expect_len);
            let mut r = Reader::new(&bytes);
            prop_assert_eq!(r.varint("v").unwrap(), value);
            prop_assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..12)) {
        // Arbitrary bytes either decode to some value or report a
        // DecodeError — never a panic, never an out-of-range shift.
        let mut r = Reader::new(&noise);
        let _ = r.varint("noise");
    }

    #[test]
    fn id_run_roundtrips(raw in proptest::collection::hash_set(any::<u32>(), 0..120)) {
        let mut ids: Vec<u32> = raw.into_iter().collect();
        ids.sort_unstable();
        let mut w = Writer::new();
        w.id_run(&ids);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.id_run("ids").unwrap(), ids);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn string_roundtrips(len in 0usize..256, seed in any::<u64>()) {
        // ASCII payloads of every legal length (I2P strings cap at 255).
        let s: String = (0..len.min(255))
            .map(|i| (b'a' + ((seed as usize + i) % 26) as u8) as char)
            .collect();
        let mut w = Writer::new();
        w.string(&s);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.string("s").unwrap(), s);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn mapping_roundtrips_sorted(n in 0usize..8, seed in any::<u64>()) {
        // Distinct keys in arbitrary insertion order come back sorted.
        let pairs: Vec<(String, String)> = (0..n)
            .map(|i| {
                let k = format!("k{:02}", (seed as usize + i * 7) % 50);
                let v = format!("v{}", i);
                (k, v)
            })
            .collect();
        let mut dedup: Vec<(String, String)> = Vec::new();
        for (k, v) in &pairs {
            if !dedup.iter().any(|(dk, _)| dk == k) {
                dedup.push((k.clone(), v.clone()));
            }
        }
        let mut w = Writer::new();
        w.mapping(dedup.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = r.mapping("m").unwrap();
        prop_assert!(r.is_empty());
        let mut expect = dedup.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(back, expect);
    }

    #[test]
    fn truncated_scalars_report_truncation(v in any::<u64>(), cut in 0usize..8) {
        let mut w = Writer::new();
        w.u64(v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..cut]);
        prop_assert_eq!(r.u64("x"), Err(DecodeError::Truncated { what: "x" }));
    }

    #[test]
    fn truncated_id_runs_never_roundtrip(raw in proptest::collection::hash_set(any::<u32>(), 1..60)) {
        let mut ids: Vec<u32> = raw.into_iter().collect();
        ids.sort_unstable();
        let mut w = Writer::new();
        w.id_run(&ids);
        let bytes = w.into_bytes();
        // Any strict prefix either errors or decodes to a shorter run —
        // it can never silently reproduce the full run.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            if let Ok(short) = r.id_run("ids") {
                prop_assert!(short.len() < ids.len());
            }
        }
    }
}
