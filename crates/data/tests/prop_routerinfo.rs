//! Adversarial decode hardening for [`RouterInfo::decode`].
//!
//! The snapshot store archives raw RouterInfo wire records, so decode
//! must be total over hostile input: for **every** strict prefix of a
//! valid encoding it returns `DecodeError` (the field sequence consumes
//! the exact byte count, so any cut lands inside a read), and for every
//! single-byte corruption it either returns `DecodeError` or decodes a
//! record whose signature no longer verifies — it never panics and
//! never accepts a forged record as authentic.

use i2p_crypto::DetRng;
use i2p_data::addr::{Introducer, RouterAddress, TransportStyle};
use i2p_data::caps::{BandwidthClass, Caps};
use i2p_data::hash::Hash256;
use i2p_data::ident::RouterIdentity;
use i2p_data::routerinfo::RouterInfo;
use i2p_data::time::SimTime;
use i2p_data::PeerIp;
use proptest::prelude::*;

/// Builds a structurally varied, signed RouterInfo from a seed.
fn sample_routerinfo(seed: u64) -> RouterInfo {
    let mut rng = DetRng::new(seed);
    let (ident, secrets) = RouterIdentity::generate(&mut rng);
    let shape = seed % 4;
    let addresses = match shape {
        0 => vec![],
        1 => vec![RouterAddress::published(
            TransportStyle::Ntcp,
            PeerIp::V4(rng.next_u64() as u32),
            9000 + (rng.next_u64() % 22_001) as u16,
        )],
        2 => vec![
            RouterAddress::published(
                TransportStyle::Ntcp,
                PeerIp::V4(rng.next_u64() as u32),
                9001,
            ),
            RouterAddress::published(
                TransportStyle::Ssu,
                PeerIp::V6((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
                9002,
            ),
        ],
        _ => vec![RouterAddress::firewalled(vec![Introducer {
            router: Hash256::digest(&seed.to_be_bytes()),
            ip: PeerIp::V4(rng.next_u64() as u32),
            tag: rng.next_u64() as u32,
        }])],
    };
    let class = BandwidthClass::ALL[(seed % 7) as usize];
    let caps = Caps {
        bandwidth: class,
        floodfill: seed & 8 != 0,
        reachable: seed & 16 != 0,
        hidden: seed & 32 != 0,
    };
    RouterInfo::new_signed(
        ident,
        &secrets,
        SimTime::from_day_ms(seed % 89, seed % 86_400_000),
        addresses,
        caps,
        "0.9.34",
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_truncation_is_a_decode_error(seed in any::<u64>()) {
        let ri = sample_routerinfo(seed);
        let bytes = ri.encode();
        prop_assert!(RouterInfo::decode(&bytes).is_ok());
        for cut in 0..bytes.len() {
            let res = RouterInfo::decode(&bytes[..cut]);
            prop_assert!(res.is_err(), "prefix of {cut}/{} bytes decoded", bytes.len());
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected_or_unverifiable(seed in any::<u64>(), flip in any::<u8>()) {
        let ri = sample_routerinfo(seed);
        let bytes = ri.encode();
        // A zero XOR mask would be the identity; force at least one bit.
        let mask = if flip == 0 { 0xA5 } else { flip };
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            match RouterInfo::decode(&bad) {
                // Structurally invalid: fine, that's a DecodeError.
                Err(_) => {}
                // Structurally valid: the HMAC signature must catch it.
                Ok(back) => prop_assert!(
                    !back.verify(),
                    "corrupted byte {pos} decoded AND verified"
                ),
            }
        }
    }
}
