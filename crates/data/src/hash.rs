//! 256-bit identifiers and the Kademlia XOR metric.
//!
//! I2P's netDb is "a distributed hash table using a variation of the
//! Kademlia algorithm" (Hoang et al. §2.1.2): peers and leases are indexed
//! by SHA-256 hashes, and closeness is the XOR distance between keys.

use i2p_crypto::sha256;

/// A 256-bit identifier (router hash, routing key, destination hash).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash (useful as a sentinel in tests).
    pub const ZERO: Hash256 = Hash256([0; 32]);

    /// Hashes arbitrary bytes.
    pub fn digest(data: &[u8]) -> Self {
        Hash256(sha256(data))
    }

    /// XOR distance to `other` (the Kademlia metric).
    pub fn distance(&self, other: &Hash256) -> Distance {
        let mut d = [0u8; 32];
        for (di, (a, b)) in d.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *di = a ^ b;
        }
        Distance(d)
    }

    /// Index of the highest differing bit relative to `other`
    /// (= 255 − common-prefix-length), or `None` if equal. This is the
    /// k-bucket index.
    pub fn bucket_index(&self, other: &Hash256) -> Option<usize> {
        for i in 0..32 {
            let x = self.0[i] ^ other.0[i];
            if x != 0 {
                return Some(255 - (i * 8 + x.leading_zeros() as usize));
            }
        }
        None
    }

    /// First 8 bytes as a big-endian integer — handy for cheap ordering
    /// and for deriving deterministic per-router sub-seeds.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap()) // i2plint: allow(panic-audit) -- self.0 is [u8; 32]; 8 bytes always exist
    }

    /// Short hex form (first 8 hex chars), as used in log output.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl std::fmt::Display for Hash256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// An XOR distance. Ordered lexicographically (equivalently, as a 256-bit
/// big-endian integer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Distance(pub [u8; 32]);

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance([0; 32]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_symmetric_and_zero_on_self() {
        let a = Hash256::digest(b"a");
        let b = Hash256::digest(b"b");
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), Distance::ZERO);
    }

    #[test]
    fn distance_orders_like_big_integers() {
        let z = Hash256::ZERO;
        let mut one = [0u8; 32];
        one[31] = 1;
        let mut big = [0u8; 32];
        big[0] = 1;
        assert!(z.distance(&Hash256(one)) < z.distance(&Hash256(big)));
    }

    #[test]
    fn triangle_inequality_xor_form() {
        // XOR metric satisfies d(a,c) <= d(a,b) XOR-combined; spot-check
        // the weaker numeric triangle inequality on random hashes.
        let a = Hash256::digest(b"x");
        let b = Hash256::digest(b"y");
        let c = Hash256::digest(b"z");
        let ab = a.distance(&b).0;
        let bc = b.distance(&c).0;
        let ac = a.distance(&c).0;
        // d(a,c) = d(a,b) XOR d(b,c) exactly, for the XOR metric.
        let mut x = [0u8; 32];
        for i in 0..32 {
            x[i] = ab[i] ^ bc[i];
        }
        assert_eq!(x, ac);
    }

    #[test]
    fn bucket_index_matches_prefix() {
        let z = Hash256::ZERO;
        let mut h = [0u8; 32];
        h[0] = 0b1000_0000;
        assert_eq!(z.bucket_index(&Hash256(h)), Some(255));
        let mut l = [0u8; 32];
        l[31] = 1;
        assert_eq!(z.bucket_index(&Hash256(l)), Some(0));
        assert_eq!(z.bucket_index(&z), None);
    }

    #[test]
    fn display_and_short() {
        let h = Hash256::ZERO;
        assert_eq!(h.short(), "00000000");
        assert_eq!(h.to_string().len(), 64);
    }
}
