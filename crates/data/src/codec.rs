//! Binary codec for the I2P-style wire format.
//!
//! The real I2P common-structures format is big-endian with
//! length-prefixed strings and sorted `key=value;` mappings; we reproduce
//! those conventions so RouterInfo files have realistic structure and the
//! codec round-trips are a meaningful property-test surface.

/// Errors produced while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length, discriminant or invariant was out of range.
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// A signature failed to verify.
    BadSignature,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            DecodeError::Invalid { what } => write!(f, "invalid value while decoding {what}"),
            DecodeError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only binary writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes an unsigned LEB128 varint (7 data bits per byte, low
    /// group first, high bit = continuation). Snapshot segments store
    /// counts and delta-encoded id runs this way: daily sighting sets
    /// are dense in small deltas, so most entries cost one byte.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.u8(byte);
                return;
            }
            self.u8(byte | 0x80);
        }
    }

    /// Writes a strictly-ascending id run: a varint count, the first id
    /// as a varint, then varint gaps (`id − prev`, always ≥ 1).
    ///
    /// # Panics
    /// If `ids` is not strictly ascending.
    pub fn id_run(&mut self, ids: &[u32]) {
        self.varint(ids.len() as u64);
        let mut prev = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            if i == 0 {
                self.varint(id as u64);
            } else {
                assert!(id > prev, "id runs must be strictly ascending ({prev} then {id})");
                self.varint((id - prev) as u64);
            }
            prev = id;
        }
    }

    /// Writes an I2P string: one length byte then up to 255 bytes.
    pub fn string(&mut self, s: &str) {
        let b = s.as_bytes();
        assert!(b.len() <= 255, "I2P strings are at most 255 bytes");
        self.u8(b.len() as u8);
        self.bytes(b);
    }

    /// Writes an I2P mapping: u16 total size, then `key=value;` pairs in
    /// sorted key order (sorting is required so signatures are stable).
    pub fn mapping<'a>(&mut self, pairs: impl IntoIterator<Item = (&'a str, &'a str)>) {
        let mut sorted: Vec<(&str, &str)> = pairs.into_iter().collect();
        sorted.sort_by_key(|(k, _)| *k);
        let mut inner = Writer::new();
        for (k, v) in sorted {
            inner.string(k);
            inner.u8(b'=');
            inner.string(v);
            inner.u8(b';');
        }
        let body = inner.into_bytes();
        assert!(body.len() <= u16::MAX as usize);
        self.u16(body.len() as u16);
        self.bytes(&body);
    }
}

/// Cursor-based binary reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]])) // i2plint: allow(index-literal) -- take(2, ..) returned exactly 2 bytes
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]])) // i2plint: allow(index-literal) -- take(4, ..) returned exactly 4 bytes
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes(b.try_into().unwrap())) // i2plint: allow(panic-audit) -- take(8, ..) returned exactly 8 bytes
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        self.take(n, what)
    }

    /// Reads an unsigned LEB128 varint (counterpart of
    /// [`Writer::varint`]). Encodings that overflow 64 bits are
    /// `Invalid`; non-minimal encodings of in-range values are accepted.
    pub fn varint(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            let low = (b & 0x7F) as u64;
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(DecodeError::Invalid { what });
            }
            out |= low << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a strictly-ascending id run (counterpart of
    /// [`Writer::id_run`]). A zero gap, an id past `u32::MAX`, or a
    /// count that cannot fit in the remaining input is `Invalid`.
    pub fn id_run(&mut self, what: &'static str) -> Result<Vec<u32>, DecodeError> {
        let n = self.varint(what)? as usize;
        // Every entry costs at least one byte, so a count beyond the
        // remaining input is corrupt — refusing here also bounds the
        // allocation below by the input size.
        if n > self.remaining() {
            return Err(DecodeError::Invalid { what });
        }
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let d = self.varint(what)?;
            if d > u32::MAX as u64 || (i > 0 && d == 0) {
                return Err(DecodeError::Invalid { what });
            }
            let id = if i == 0 { d } else { prev + d };
            if id > u32::MAX as u64 {
                return Err(DecodeError::Invalid { what });
            }
            out.push(id as u32);
            prev = id;
        }
        Ok(out)
    }

    /// Reads exactly 32 bytes into an array.
    pub fn array32(&mut self, what: &'static str) -> Result<[u8; 32], DecodeError> {
        Ok(self.take(32, what)?.try_into().unwrap()) // i2plint: allow(panic-audit) -- take(32, ..) returned exactly 32 bytes
    }

    /// Reads an I2P string.
    pub fn string(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.u8(what)? as usize;
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::Invalid { what })
    }

    /// Reads an I2P mapping into sorted `(key, value)` pairs.
    pub fn mapping(&mut self, what: &'static str) -> Result<Vec<(String, String)>, DecodeError> {
        let size = self.u16(what)? as usize;
        let body = self.take(size, what)?;
        let mut inner = Reader::new(body);
        let mut out = Vec::new();
        while !inner.is_empty() {
            let k = inner.string(what)?;
            if inner.u8(what)? != b'=' {
                return Err(DecodeError::Invalid { what });
            }
            let v = inner.string(what)?;
            if inner.u8(what)? != b';' {
                return Err(DecodeError::Invalid { what });
            }
            out.push((k, v));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 15);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
    }

    #[test]
    fn string_roundtrip() {
        let mut w = Writer::new();
        w.string("caps");
        w.string("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.string("s").unwrap(), "caps");
        assert_eq!(r.string("s").unwrap(), "");
    }

    #[test]
    fn mapping_sorted_and_roundtrips() {
        let mut w = Writer::new();
        w.mapping([("netdb.knownRouters", "120"), ("caps", "OfR")]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let pairs = r.mapping("m").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("caps".to_string(), "OfR".to_string()),
                ("netdb.knownRouters".to_string(), "120".to_string()),
            ]
        );
    }

    #[test]
    fn truncation_reported() {
        let mut w = Writer::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert_eq!(r.u32("x"), Err(DecodeError::Truncated { what: "x" }));
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        let cases = [0u64, 1, 127, 128, 255, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut w = Writer::new();
        for &v in &cases {
            w.varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &cases {
            assert_eq!(r.varint("v").unwrap(), v);
        }
        assert!(r.is_empty());
        // Single-byte values really cost one byte.
        let mut w = Writer::new();
        w.varint(127);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes push past 64 bits.
        let bytes = [0xFFu8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.varint("v"), Err(DecodeError::Invalid { what: "v" }));
        // A 10th byte carrying more than the one remaining bit overflows.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.varint("v"), Err(DecodeError::Invalid { what: "v" }));
    }

    #[test]
    fn id_run_roundtrips_and_compresses() {
        let ids = [0u32, 1, 2, 5, 100, 101, 4_000_000_000];
        let mut w = Writer::new();
        w.id_run(&ids);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.id_run("ids").unwrap(), ids);
        assert!(r.is_empty());
        // Dense runs cost ~1 byte per id (count + first + small gaps).
        let dense: Vec<u32> = (1000..2000).collect();
        let mut w = Writer::new();
        w.id_run(&dense);
        assert!(w.len() < dense.len() + 8, "delta run must stay near 1 B/id, got {}", w.len());
    }

    #[test]
    fn id_run_rejects_zero_gap_and_overlong_count() {
        // count 2, first id 5, gap 0 → not strictly ascending.
        let mut w = Writer::new();
        w.varint(2);
        w.varint(5);
        w.varint(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.id_run("ids"), Err(DecodeError::Invalid { .. })));
        // A count larger than the remaining input is corrupt, not an
        // allocation request.
        let mut w = Writer::new();
        w.varint(1 << 40);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.id_run("ids"), Err(DecodeError::Invalid { .. })));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn id_run_write_rejects_descending() {
        let mut w = Writer::new();
        w.id_run(&[3, 2]);
    }

    #[test]
    fn malformed_mapping_rejected() {
        // mapping body: string "a", then ':' instead of '='.
        let mut w = Writer::new();
        let mut inner = Writer::new();
        inner.string("a");
        inner.u8(b':');
        inner.string("b");
        inner.u8(b';');
        let body = inner.into_bytes();
        w.u16(body.len() as u16);
        w.bytes(&body);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.mapping("m"), Err(DecodeError::Invalid { .. })));
    }
}
