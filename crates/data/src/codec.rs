//! Binary codec for the I2P-style wire format.
//!
//! The real I2P common-structures format is big-endian with
//! length-prefixed strings and sorted `key=value;` mappings; we reproduce
//! those conventions so RouterInfo files have realistic structure and the
//! codec round-trips are a meaningful property-test surface.

/// Errors produced while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length, discriminant or invariant was out of range.
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// A signature failed to verify.
    BadSignature,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            DecodeError::Invalid { what } => write!(f, "invalid value while decoding {what}"),
            DecodeError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only binary writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes an I2P string: one length byte then up to 255 bytes.
    pub fn string(&mut self, s: &str) {
        let b = s.as_bytes();
        assert!(b.len() <= 255, "I2P strings are at most 255 bytes");
        self.u8(b.len() as u8);
        self.bytes(b);
    }

    /// Writes an I2P mapping: u16 total size, then `key=value;` pairs in
    /// sorted key order (sorting is required so signatures are stable).
    pub fn mapping<'a>(&mut self, pairs: impl IntoIterator<Item = (&'a str, &'a str)>) {
        let mut sorted: Vec<(&str, &str)> = pairs.into_iter().collect();
        sorted.sort_by_key(|(k, _)| *k);
        let mut inner = Writer::new();
        for (k, v) in sorted {
            inner.string(k);
            inner.u8(b'=');
            inner.string(v);
            inner.u8(b';');
        }
        let body = inner.into_bytes();
        assert!(body.len() <= u16::MAX as usize);
        self.u16(body.len() as u16);
        self.bytes(&body);
    }
}

/// Cursor-based binary reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes(b.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        self.take(n, what)
    }

    /// Reads exactly 32 bytes into an array.
    pub fn array32(&mut self, what: &'static str) -> Result<[u8; 32], DecodeError> {
        Ok(self.take(32, what)?.try_into().unwrap())
    }

    /// Reads an I2P string.
    pub fn string(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.u8(what)? as usize;
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::Invalid { what })
    }

    /// Reads an I2P mapping into sorted `(key, value)` pairs.
    pub fn mapping(&mut self, what: &'static str) -> Result<Vec<(String, String)>, DecodeError> {
        let size = self.u16(what)? as usize;
        let body = self.take(size, what)?;
        let mut inner = Reader::new(body);
        let mut out = Vec::new();
        while !inner.is_empty() {
            let k = inner.string(what)?;
            if inner.u8(what)? != b'=' {
                return Err(DecodeError::Invalid { what });
            }
            let v = inner.string(what)?;
            if inner.u8(what)? != b';' {
                return Err(DecodeError::Invalid { what });
            }
            out.push((k, v));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 15);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
    }

    #[test]
    fn string_roundtrip() {
        let mut w = Writer::new();
        w.string("caps");
        w.string("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.string("s").unwrap(), "caps");
        assert_eq!(r.string("s").unwrap(), "");
    }

    #[test]
    fn mapping_sorted_and_roundtrips() {
        let mut w = Writer::new();
        w.mapping([("netdb.knownRouters", "120"), ("caps", "OfR")]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let pairs = r.mapping("m").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("caps".to_string(), "OfR".to_string()),
                ("netdb.knownRouters".to_string(), "120".to_string()),
            ]
        );
    }

    #[test]
    fn truncation_reported() {
        let mut w = Writer::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert_eq!(r.u32("x"), Err(DecodeError::Truncated { what: "x" }));
    }

    #[test]
    fn malformed_mapping_rejected() {
        // mapping body: string "a", then ':' instead of '='.
        let mut w = Writer::new();
        let mut inner = Writer::new();
        inner.string("a");
        inner.u8(b':');
        inner.string("b");
        inner.u8(b';');
        let body = inner.into_bytes();
        w.u16(body.len() as u16);
        w.bytes(&body);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.mapping("m"), Err(DecodeError::Invalid { .. })));
    }
}
