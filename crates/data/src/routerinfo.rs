//! RouterInfo: the netDb record describing one router.
//!
//! "A RouterInfo provides contact information about a particular I2P peer,
//! including its key, capacity, address, and port" (Hoang et al. §2.1.2).
//! Notably, the `expiration` field exists in the structure **but is not
//! used** by the real software (§4.3) — the paper leans on this: a stored
//! RouterInfo proves presence, not liveness, which is why the monitoring
//! fleet wipes its netDb daily. We keep the unused field for fidelity.

use crate::addr::RouterAddress;
use crate::caps::Caps;
use crate::codec::{DecodeError, Reader, Writer};
use crate::hash::Hash256;
use crate::ident::{verify, IdentitySecrets, RouterIdentity};
use crate::time::SimTime;

/// A signed RouterInfo record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouterInfo {
    /// The router's public identity.
    pub identity: RouterIdentity,
    /// Publication timestamp.
    pub published: SimTime,
    /// Transport addresses (empty for hidden routers).
    pub addresses: Vec<RouterAddress>,
    /// Capacity flags.
    pub caps: Caps,
    /// Always-zero expiration, mirroring the unused field (§4.3).
    pub expiration: u64,
    /// Router software version string (e.g. "0.9.34").
    pub version: String,
    /// HMAC signature over the body.
    pub signature: [u8; 32],
}

impl RouterInfo {
    /// Builds and signs a RouterInfo.
    pub fn new_signed(
        identity: RouterIdentity,
        secrets: &IdentitySecrets,
        published: SimTime,
        addresses: Vec<RouterAddress>,
        caps: Caps,
        version: &str,
    ) -> Self {
        let mut ri = RouterInfo {
            identity,
            published,
            addresses,
            caps,
            expiration: 0,
            version: version.to_string(),
            signature: [0; 32],
        };
        ri.signature = secrets.sign(&ri.body_bytes());
        ri
    }

    /// The router hash (permanent peer identifier).
    pub fn hash(&self) -> Hash256 {
        self.identity.hash()
    }

    /// The signed body (everything except the signature).
    fn body_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.identity.encode(&mut w);
        w.u64(self.published.as_millis());
        w.u8(self.addresses.len() as u8);
        for a in &self.addresses {
            a.encode(&mut w);
        }
        let caps = self.caps.to_caps_string();
        let ver = self.version.clone();
        w.mapping([("caps", caps.as_str()), ("router.version", ver.as_str())]);
        w.u64(self.expiration);
        w.into_bytes()
    }

    /// Verifies the signature.
    pub fn verify(&self) -> bool {
        verify(&self.identity, &self.body_bytes(), &self.signature)
    }

    /// Full binary encoding (body + signature).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = self.body_bytes();
        body.extend_from_slice(&self.signature);
        body
    }

    /// Decodes and structurally validates (does **not** verify the
    /// signature; call [`RouterInfo::verify`]).
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let identity = RouterIdentity::decode(&mut r)?;
        let published = SimTime(r.u64("routerinfo.published")?);
        let n = r.u8("routerinfo.address-count")? as usize;
        let mut addresses = Vec::with_capacity(n);
        for _ in 0..n {
            addresses.push(RouterAddress::decode(&mut r)?);
        }
        let mapping = r.mapping("routerinfo.options")?;
        let mut caps = None;
        let mut version = String::new();
        for (k, v) in mapping {
            match k.as_str() {
                "caps" => caps = Some(Caps::parse(&v)?),
                "router.version" => version = v,
                _ => {}
            }
        }
        let caps = caps.ok_or(DecodeError::Invalid { what: "routerinfo.caps" })?;
        let expiration = r.u64("routerinfo.expiration")?;
        let signature = r.array32("routerinfo.signature")?;
        if !r.is_empty() {
            return Err(DecodeError::Invalid { what: "routerinfo.trailing" });
        }
        Ok(RouterInfo { identity, published, addresses, caps, expiration, version, signature })
    }

    /// All IPs this RouterInfo exposes to an address-based censor: its own
    /// published addresses (the introducer IPs belong to *other* peers'
    /// RouterInfos and are counted there).
    pub fn published_ips(&self) -> Vec<crate::addr::PeerIp> {
        self.addresses.iter().filter_map(|a| a.ip).collect()
    }

    /// Whether the record publishes **no** valid IP (the paper's
    /// "unknown-IP" peers, Fig. 6).
    pub fn is_unknown_ip(&self) -> bool {
        self.published_ips().is_empty()
    }

    /// Firewalled = no IP but introducers present (§5.1).
    pub fn is_firewalled(&self) -> bool {
        self.is_unknown_ip() && self.addresses.iter().any(|a| !a.introducers.is_empty())
    }

    /// Hidden = no IP and no introducers (§5.1).
    pub fn is_hidden(&self) -> bool {
        self.is_unknown_ip() && !self.is_firewalled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Introducer, PeerIp, TransportStyle};
    use crate::caps::BandwidthClass;
    use i2p_crypto::DetRng;

    fn sample(rng: &mut DetRng, addresses: Vec<RouterAddress>) -> RouterInfo {
        let (ident, secrets) = RouterIdentity::generate(rng);
        RouterInfo::new_signed(
            ident,
            &secrets,
            SimTime::from_day_ms(2, 777),
            addresses,
            Caps::standard(BandwidthClass::O),
            "0.9.34",
        )
    }

    #[test]
    fn encode_decode_verify_roundtrip() {
        let mut rng = DetRng::new(10);
        let ri = sample(
            &mut rng,
            vec![RouterAddress::published(TransportStyle::Ntcp, PeerIp::V4(0x01020304), 10001)],
        );
        assert!(ri.verify());
        let bytes = ri.encode();
        let back = RouterInfo::decode(&bytes).unwrap();
        assert_eq!(back, ri);
        assert!(back.verify());
    }

    #[test]
    fn tampered_record_fails_verification() {
        let mut rng = DetRng::new(11);
        let ri = sample(
            &mut rng,
            vec![RouterAddress::published(TransportStyle::Ntcp, PeerIp::V4(5), 9000)],
        );
        let mut bytes = ri.encode();
        // Flip a byte in the published timestamp region (after the 41-byte
        // identity).
        bytes[45] ^= 0xFF;
        let back = RouterInfo::decode(&bytes).unwrap();
        assert!(!back.verify());
    }

    #[test]
    fn classification_published_firewalled_hidden() {
        let mut rng = DetRng::new(12);
        let published = sample(
            &mut rng,
            vec![RouterAddress::published(TransportStyle::Ssu, PeerIp::V4(9), 9999)],
        );
        assert!(!published.is_unknown_ip());
        assert!(!published.is_firewalled());
        assert!(!published.is_hidden());

        let firewalled = sample(
            &mut rng,
            vec![RouterAddress::firewalled(vec![Introducer {
                router: Hash256::digest(b"intro"),
                ip: PeerIp::V4(77),
                tag: 1,
            }])],
        );
        assert!(firewalled.is_unknown_ip());
        assert!(firewalled.is_firewalled());
        assert!(!firewalled.is_hidden());

        let hidden = sample(&mut rng, vec![]);
        assert!(hidden.is_unknown_ip());
        assert!(hidden.is_hidden());
    }

    #[test]
    fn expiration_field_kept_zero() {
        let mut rng = DetRng::new(13);
        let ri = sample(&mut rng, vec![]);
        assert_eq!(ri.expiration, 0, "the unused field stays zero, mirroring §4.3");
    }

    #[test]
    fn truncated_input_rejected() {
        let mut rng = DetRng::new(14);
        let ri = sample(&mut rng, vec![]);
        let bytes = ri.encode();
        for cut in [0usize, 10, bytes.len() - 1] {
            assert!(RouterInfo::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
