//! Capacity flags.
//!
//! Each RouterInfo carries a `caps` option that encodes (1) the estimated
//! shared-bandwidth class as one of seven letters `K L M N O P X`, (2) the
//! floodfill flag `f`, and (3) reachability `R`/`U` (Hoang et al. §5.3).
//!
//! Two subtleties the paper's Table 1 hinges on are modelled exactly:
//!
//! * **The `P/X → O` compatibility rule** (§5.3.1): since I2P 0.9.20, a
//!   peer in class `P` or `X` *also* publishes `O` so that older software
//!   keeps working. This is why Table 1's columns sum to more than 100 %.
//! * **Unqualified floodfills**: operators can force the `f` flag on
//!   routers below the 128 KB/s (class `N`) automatic-opt-in threshold;
//!   §5.3.1 uses the share of qualified (N/O/P/X) floodfills (71 %) to
//!   re-estimate the network population.

use crate::codec::DecodeError;

/// The seven shared-bandwidth classes (§5.3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BandwidthClass {
    /// < 12 KB/s.
    K,
    /// 12–48 KB/s (the I2P default — dominant in the network, Fig. 9).
    L,
    /// 48–64 KB/s.
    M,
    /// 64–128 KB/s.
    N,
    /// 128–256 KB/s.
    O,
    /// 256–2000 KB/s.
    P,
    /// > 2000 KB/s.
    X,
}

impl BandwidthClass {
    /// All classes in ascending bandwidth order.
    pub const ALL: [BandwidthClass; 7] = [
        BandwidthClass::K,
        BandwidthClass::L,
        BandwidthClass::M,
        BandwidthClass::N,
        BandwidthClass::O,
        BandwidthClass::P,
        BandwidthClass::X,
    ];

    /// Position in [`BandwidthClass::ALL`] (ascending bandwidth
    /// order), as a total function — histogram code indexes by this.
    pub const fn index(self) -> usize {
        match self {
            BandwidthClass::K => 0,
            BandwidthClass::L => 1,
            BandwidthClass::M => 2,
            BandwidthClass::N => 3,
            BandwidthClass::O => 4,
            BandwidthClass::P => 5,
            BandwidthClass::X => 6,
        }
    }

    /// The capability letter.
    pub const fn letter(self) -> char {
        match self {
            BandwidthClass::K => 'K',
            BandwidthClass::L => 'L',
            BandwidthClass::M => 'M',
            BandwidthClass::N => 'N',
            BandwidthClass::O => 'O',
            BandwidthClass::P => 'P',
            BandwidthClass::X => 'X',
        }
    }

    /// Parses a capability letter.
    pub const fn from_letter(c: char) -> Option<Self> {
        Some(match c {
            'K' => BandwidthClass::K,
            'L' => BandwidthClass::L,
            'M' => BandwidthClass::M,
            'N' => BandwidthClass::N,
            'O' => BandwidthClass::O,
            'P' => BandwidthClass::P,
            'X' => BandwidthClass::X,
            _ => return None,
        })
    }

    /// The class for a given shared bandwidth in KB/s.
    pub fn for_shared_kbps(kbps: u32) -> Self {
        match kbps {
            0..=11 => BandwidthClass::K,
            12..=47 => BandwidthClass::L,
            48..=63 => BandwidthClass::M,
            64..=127 => BandwidthClass::N,
            128..=255 => BandwidthClass::O,
            256..=1999 => BandwidthClass::P,
            _ => BandwidthClass::X,
        }
    }

    /// Representative shared bandwidth (KB/s) for a class — the midpoint
    /// of its range (cap for `X`). Used by the tunnel peer-selection
    /// weighting.
    pub const fn nominal_kbps(self) -> u32 {
        match self {
            BandwidthClass::K => 8,
            BandwidthClass::L => 30,
            BandwidthClass::M => 56,
            BandwidthClass::N => 96,
            BandwidthClass::O => 192,
            BandwidthClass::P => 1128,
            BandwidthClass::X => 4000,
        }
    }

    /// Whether this class meets the automatic floodfill opt-in minimum
    /// (≥ class `N`, i.e. ≥ 64 KB/s with ≥128 KB/s share requirement met
    /// by N-and-above in practice; §5.3.1).
    pub const fn floodfill_qualified(self) -> bool {
        matches!(
            self,
            BandwidthClass::N | BandwidthClass::O | BandwidthClass::P | BandwidthClass::X
        )
    }
}

/// A parsed capacity-flag set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Caps {
    /// The peer's *true* bandwidth class.
    pub bandwidth: BandwidthClass,
    /// Floodfill flag `f`.
    pub floodfill: bool,
    /// Reachable (`R`) vs unreachable (`U`).
    pub reachable: bool,
    /// Hidden mode (`H`): does not publish an address at all.
    pub hidden: bool,
}

impl Caps {
    /// Builds caps for a plain reachable non-floodfill router.
    pub fn standard(bandwidth: BandwidthClass) -> Self {
        Caps { bandwidth, floodfill: false, reachable: true, hidden: false }
    }

    /// The capability letters this peer *publishes*, applying the
    /// `P/X → O` compatibility rule.
    pub fn published_letters(&self) -> Vec<char> {
        let mut out = Vec::with_capacity(4);
        if matches!(self.bandwidth, BandwidthClass::P | BandwidthClass::X) {
            out.push(BandwidthClass::O.letter());
        }
        out.push(self.bandwidth.letter());
        if self.floodfill {
            out.push('f');
        }
        out.push(if self.reachable { 'R' } else { 'U' });
        if self.hidden {
            out.push('H');
        }
        out
    }

    /// Formats the caps string as it appears in a RouterInfo (e.g. `OfR`
    /// for a reachable 128–256 KB/s floodfill — the paper's §5.3.1
    /// example).
    pub fn to_caps_string(&self) -> String {
        self.published_letters().into_iter().collect()
    }

    /// Parses a caps string. The *highest* bandwidth letter present is the
    /// true class (inverting the `P/X → O` rule).
    ///
    /// Reachability is a single flag: a second `R` or `U` — duplicate or
    /// contradictory (`"LRU"`) — is rejected rather than letting the
    /// later letter silently win.
    pub fn parse(s: &str) -> Result<Self, DecodeError> {
        let mut bandwidth: Option<BandwidthClass> = None;
        let mut floodfill = false;
        let mut reachable = None;
        let mut hidden = false;
        for c in s.chars() {
            if let Some(b) = BandwidthClass::from_letter(c) {
                bandwidth = Some(match bandwidth {
                    Some(prev) if prev >= b => prev,
                    _ => b,
                });
            } else {
                match c {
                    'f' => floodfill = true,
                    'R' | 'U' => {
                        if reachable.is_some() {
                            return Err(DecodeError::Invalid { what: "caps reachability" });
                        }
                        reachable = Some(c == 'R');
                    }
                    'H' => hidden = true,
                    _ => return Err(DecodeError::Invalid { what: "caps" }),
                }
            }
        }
        Ok(Caps {
            bandwidth: bandwidth.ok_or(DecodeError::Invalid { what: "caps" })?,
            floodfill,
            reachable: reachable.unwrap_or(false),
            hidden,
        })
    }

    /// Whether this is a *qualified* floodfill (floodfill flag AND
    /// automatic-opt-in bandwidth; §5.3.1's 71 %).
    pub fn qualified_floodfill(&self) -> bool {
        self.floodfill && self.bandwidth.floodfill_qualified()
    }
}

impl std::fmt::Display for Caps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_caps_string())
    }
}

/// An inline caps string.
///
/// A published caps string never exceeds five letters (compat `O` +
/// bandwidth letter + `f` + `R`/`U` + `H`), so observation records store
/// it in a fixed six-byte buffer instead of a heap `String` — at harvest
/// scale (peers × days × vantages) the per-record allocation dominates
/// record capture.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapsString {
    buf: [u8; 6],
    len: u8,
}

impl CapsString {
    /// Maximum letters an inline caps string holds.
    pub const CAPACITY: usize = 6;

    /// The empty caps string.
    pub const fn new() -> Self {
        CapsString { buf: [0; 6], len: 0 }
    }

    /// Appends a capability letter.
    ///
    /// # Panics
    /// If the buffer is full or `c` is not ASCII — caps letters are
    /// drawn from `K..X f R U H`.
    pub fn push(&mut self, c: char) {
        assert!(c.is_ascii(), "caps letters are ASCII");
        assert!((self.len as usize) < Self::CAPACITY, "caps string overflow");
        self.buf[self.len as usize] = c as u8;
        self.len += 1;
    }

    /// The string view.
    pub fn as_str(&self) -> &str {
        // i2plint: allow(panic-audit) -- push() only ever appends ASCII capability letters
        std::str::from_utf8(&self.buf[..self.len as usize]).expect("caps are ASCII")
    }
}

impl Default for CapsString {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for CapsString {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for CapsString {
    fn from(s: &str) -> Self {
        let mut out = CapsString::new();
        for c in s.chars() {
            out.push(c);
        }
        out
    }
}

impl PartialEq<&str> for CapsString {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::fmt::Display for CapsString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for CapsString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl Caps {
    /// The published caps string as an inline [`CapsString`].
    pub fn to_inline_caps(&self) -> CapsString {
        let mut out = CapsString::new();
        for c in self.published_letters() {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ranges_match_paper_table() {
        assert_eq!(BandwidthClass::for_shared_kbps(5), BandwidthClass::K);
        assert_eq!(BandwidthClass::for_shared_kbps(12), BandwidthClass::L);
        assert_eq!(BandwidthClass::for_shared_kbps(47), BandwidthClass::L);
        assert_eq!(BandwidthClass::for_shared_kbps(48), BandwidthClass::M);
        assert_eq!(BandwidthClass::for_shared_kbps(64), BandwidthClass::N);
        assert_eq!(BandwidthClass::for_shared_kbps(128), BandwidthClass::O);
        assert_eq!(BandwidthClass::for_shared_kbps(256), BandwidthClass::P);
        assert_eq!(BandwidthClass::for_shared_kbps(2000), BandwidthClass::X);
    }

    #[test]
    fn paper_example_ofr() {
        let caps = Caps {
            bandwidth: BandwidthClass::O,
            floodfill: true,
            reachable: true,
            hidden: false,
        };
        assert_eq!(caps.to_caps_string(), "OfR");
        assert_eq!(Caps::parse("OfR").unwrap(), caps);
    }

    #[test]
    fn px_publish_o_for_compat() {
        let p = Caps::standard(BandwidthClass::P);
        assert_eq!(p.to_caps_string(), "OPR");
        let x = Caps::standard(BandwidthClass::X);
        assert_eq!(x.to_caps_string(), "OXR");
        // Parsing recovers the true class.
        assert_eq!(Caps::parse("OPR").unwrap().bandwidth, BandwidthClass::P);
        assert_eq!(Caps::parse("OXR").unwrap().bandwidth, BandwidthClass::X);
    }

    #[test]
    fn roundtrip_all_combinations() {
        for b in BandwidthClass::ALL {
            for ff in [false, true] {
                for r in [false, true] {
                    for h in [false, true] {
                        let caps = Caps { bandwidth: b, floodfill: ff, reachable: r, hidden: h };
                        let parsed = Caps::parse(&caps.to_caps_string()).unwrap();
                        assert_eq!(parsed, caps);
                    }
                }
            }
        }
    }

    #[test]
    fn qualified_floodfill_threshold() {
        for b in BandwidthClass::ALL {
            let caps = Caps { bandwidth: b, floodfill: true, reachable: true, hidden: false };
            assert_eq!(caps.qualified_floodfill(), b >= BandwidthClass::N, "{b:?}");
        }
        // Non-floodfill is never qualified.
        assert!(!Caps::standard(BandwidthClass::X).qualified_floodfill());
    }

    #[test]
    fn invalid_caps_rejected() {
        assert!(Caps::parse("Z").is_err());
        assert!(Caps::parse("").is_err());
        assert!(Caps::parse("fR").is_err()); // no bandwidth letter
    }

    #[test]
    fn contradictory_reachability_rejected() {
        // Regression: "LRU" used to parse as unreachable (the later `U`
        // silently overrode the earlier `R`).
        assert!(Caps::parse("LRU").is_err());
        assert!(Caps::parse("LUR").is_err());
        // Duplicates are just as malformed.
        assert!(Caps::parse("LRR").is_err());
        assert!(Caps::parse("LUU").is_err());
        // A single flag still parses either way round.
        assert!(Caps::parse("LR").unwrap().reachable);
        assert!(!Caps::parse("LU").unwrap().reachable);
    }

    #[test]
    fn inline_caps_matches_heap_string() {
        for b in BandwidthClass::ALL {
            for ff in [false, true] {
                for r in [false, true] {
                    for h in [false, true] {
                        let caps = Caps { bandwidth: b, floodfill: ff, reachable: r, hidden: h };
                        let inline = caps.to_inline_caps();
                        assert_eq!(inline.as_str(), caps.to_caps_string());
                        assert_eq!(Caps::parse(&inline).unwrap(), caps);
                        assert_eq!(CapsString::from(inline.as_str()), inline);
                    }
                }
            }
        }
    }

    #[test]
    fn inline_caps_longest_legal_string_fits() {
        // `OXfUH` is the longest publishable combination (5 letters).
        let caps =
            Caps { bandwidth: BandwidthClass::X, floodfill: true, reachable: false, hidden: true };
        let inline = caps.to_inline_caps();
        assert_eq!(inline, "OXfUH");
        assert_eq!(inline.len(), 5);
        assert!(inline.len() <= CapsString::CAPACITY);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn inline_caps_overflow_panics() {
        let mut s = CapsString::new();
        for _ in 0..7 {
            s.push('L');
        }
    }
}
