//! LeaseSets: netDb records for hidden-service destinations.
//!
//! "Bob's LeaseSet tells Alice the contact information of the tunnel
//! gateway of Bob's inbound tunnel" (Hoang et al. §2.1.2). The usability
//! experiment (Fig. 14) needs LeaseSets end to end: fetching an eepsite
//! requires looking up its LeaseSet at floodfills, then sending garlic
//! messages to one of its inbound gateways.

use crate::codec::{DecodeError, Reader, Writer};
use crate::hash::Hash256;
use crate::ident::{verify, IdentitySecrets, RouterIdentity};
use crate::time::{Duration, SimTime};

/// One lease: an inbound-tunnel gateway that can reach the destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lease {
    /// The gateway router of the destination's inbound tunnel. Published,
    /// per §2.1.1 ("gateways of inbound tunnels are published").
    pub gateway: Hash256,
    /// Tunnel identifier on that gateway.
    pub tunnel_id: u32,
    /// When the lease (tunnel) expires.
    pub end_date: SimTime,
}

/// A signed LeaseSet for a destination.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaseSet {
    /// Destination identity (same structure as a router identity).
    pub destination: RouterIdentity,
    /// Current leases (I2P allows up to 16; tunnels rotate every 10 min).
    pub leases: Vec<Lease>,
    /// HMAC signature over the body.
    pub signature: [u8; 32],
}

/// Tunnel lifetime: "new tunnels are formed every ten minutes" (§2.1.1).
pub const LEASE_LIFETIME: Duration = Duration::from_mins(10);

impl LeaseSet {
    /// Builds and signs a LeaseSet.
    pub fn new_signed(
        destination: RouterIdentity,
        secrets: &IdentitySecrets,
        leases: Vec<Lease>,
    ) -> Self {
        assert!(leases.len() <= 16, "at most 16 leases per LeaseSet");
        let mut ls = LeaseSet { destination, leases, signature: [0; 32] };
        ls.signature = secrets.sign(&ls.body_bytes());
        ls
    }

    /// The destination hash (the netDb search key material).
    pub fn dest_hash(&self) -> Hash256 {
        self.destination.hash()
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.destination.encode(&mut w);
        w.u8(self.leases.len() as u8);
        for l in &self.leases {
            w.bytes(&l.gateway.0);
            w.u32(l.tunnel_id);
            w.u64(l.end_date.as_millis());
        }
        w.into_bytes()
    }

    /// Verifies the signature.
    pub fn verify(&self) -> bool {
        verify(&self.destination, &self.body_bytes(), &self.signature)
    }

    /// Full binary encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = self.body_bytes();
        body.extend_from_slice(&self.signature);
        body
    }

    /// Decodes (signature not verified here).
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let destination = RouterIdentity::decode(&mut r)?;
        let n = r.u8("leaseset.count")? as usize;
        if n > 16 {
            return Err(DecodeError::Invalid { what: "leaseset.count" });
        }
        let mut leases = Vec::with_capacity(n);
        for _ in 0..n {
            let gateway = Hash256(r.array32("lease.gateway")?);
            let tunnel_id = r.u32("lease.tunnel_id")?;
            let end_date = SimTime(r.u64("lease.end_date")?);
            leases.push(Lease { gateway, tunnel_id, end_date });
        }
        let signature = r.array32("leaseset.signature")?;
        if !r.is_empty() {
            return Err(DecodeError::Invalid { what: "leaseset.trailing" });
        }
        Ok(LeaseSet { destination, leases, signature })
    }

    /// Leases that are still valid at `now`.
    pub fn live_leases(&self, now: SimTime) -> impl Iterator<Item = &Lease> {
        self.leases.iter().filter(move |l| l.end_date > now)
    }

    /// Whether the whole LeaseSet is expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.live_leases(now).next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2p_crypto::DetRng;

    fn sample(rng: &mut DetRng, n_leases: usize, end: SimTime) -> LeaseSet {
        let (dest, secrets) = RouterIdentity::generate(rng);
        let leases = (0..n_leases)
            .map(|i| Lease {
                gateway: Hash256::digest(&[i as u8]),
                tunnel_id: i as u32 + 1,
                end_date: end,
            })
            .collect();
        LeaseSet::new_signed(dest, &secrets, leases)
    }

    #[test]
    fn roundtrip_and_verify() {
        let mut rng = DetRng::new(20);
        let ls = sample(&mut rng, 3, SimTime(60_000));
        assert!(ls.verify());
        let back = LeaseSet::decode(&ls.encode()).unwrap();
        assert_eq!(back, ls);
        assert!(back.verify());
    }

    #[test]
    fn expiry_semantics() {
        let mut rng = DetRng::new(21);
        let ls = sample(&mut rng, 2, SimTime(600_000));
        assert!(!ls.is_expired(SimTime(0)));
        assert_eq!(ls.live_leases(SimTime(0)).count(), 2);
        assert!(ls.is_expired(SimTime(600_000)));
    }

    #[test]
    fn empty_leaseset_is_expired() {
        let mut rng = DetRng::new(22);
        let ls = sample(&mut rng, 0, SimTime(1));
        assert!(ls.is_expired(SimTime(0)));
    }

    #[test]
    fn too_many_leases_rejected_on_decode() {
        let mut rng = DetRng::new(23);
        let ls = sample(&mut rng, 1, SimTime(1));
        let mut bytes = ls.encode();
        // The lease count byte sits right after the 41-byte identity.
        bytes[41] = 17;
        assert!(LeaseSet::decode(&bytes).is_err());
    }

    #[test]
    fn tamper_detection() {
        let mut rng = DetRng::new(24);
        let ls = sample(&mut rng, 1, SimTime(1));
        let mut bytes = ls.encode();
        let n = bytes.len();
        bytes[n - 40] ^= 1; // flip a bit inside the lease data
        let back = LeaseSet::decode(&bytes).unwrap();
        assert!(!back.verify());
    }
}
