//! Router transport addresses.
//!
//! A RouterInfo "provides contact information about a particular I2P peer,
//! including its key, capacity, address, and port" (Hoang et al. §2.1.2).
//! Three address situations matter to the paper's Fig. 5/6 analysis:
//!
//! * **published** — the RouterInfo carries a public IP and port;
//! * **firewalled** — no valid IP field, but SSU *introducers* are listed
//!   (third-party peers that relay hole-punching requests, §5.1);
//! * **hidden** — neither an IP nor introducers (the router only uses
//!   other peers' tunnels and never relays, §5.1).
//!
//! Ports are drawn from I2P's 9000–31000 arbitrary range (§2.2.2), which
//! is what defeats port-based censorship.

use crate::codec::{DecodeError, Reader, Writer};
use crate::hash::Hash256;

/// A peer IP address (simulated address space).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PeerIp {
    /// IPv4, stored as a big-endian u32.
    V4(u32),
    /// IPv6, stored as a big-endian u128.
    V6(u128),
}

impl PeerIp {
    /// Whether this is an IPv4 address.
    pub fn is_v4(&self) -> bool {
        matches!(self, PeerIp::V4(_))
    }

    /// A stable 64-bit digest of the address (used for hashing into
    /// blocklists and for deterministic reseed answers).
    pub fn digest64(&self) -> u64 {
        match self {
            PeerIp::V4(v) => 0x4000_0000_0000_0000 | *v as u64,
            PeerIp::V6(v) => (*v >> 64) as u64 ^ *v as u64 ^ 0x6000_0000_0000_0000,
        }
    }
}

impl std::fmt::Display for PeerIp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerIp::V4(v) => {
                let [a, b, c, d] = v.to_be_bytes();
                write!(f, "{a}.{b}.{c}.{d}")
            }
            PeerIp::V6(v) => {
                let b = v.to_be_bytes();
                for (i, chunk) in b.chunks(2).enumerate() {
                    if i > 0 {
                        write!(f, ":")?;
                    }
                    write!(f, "{:x}", u16::from_be_bytes([chunk[0], chunk[1]]))?; // i2plint: allow(index-literal) -- chunks(2) of [u8; 16] yields exact pairs
                }
                Ok(())
            }
        }
    }
}

/// Transport protocol style.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransportStyle {
    /// NTCP (TCP-like, the fingerprintable 288/304/448/48 handshake).
    Ntcp,
    /// SSU (UDP-like, supports introducers).
    Ssu,
}

impl TransportStyle {
    const fn tag(self) -> u8 {
        match self {
            TransportStyle::Ntcp => 1,
            TransportStyle::Ssu => 2,
        }
    }

    const fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            1 => TransportStyle::Ntcp,
            2 => TransportStyle::Ssu,
            _ => return None,
        })
    }
}

/// An SSU introducer entry: a reachable third-party peer plus the tag it
/// issued (§5.1's hole-punching description).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Introducer {
    /// The introducer's router hash.
    pub router: Hash256,
    /// The introducer's public IP (this is what a censor can block).
    pub ip: PeerIp,
    /// The introduction tag.
    pub tag: u32,
}

/// One transport address block inside a RouterInfo.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouterAddress {
    /// Transport style.
    pub style: TransportStyle,
    /// Published IP, if any. Firewalled and hidden peers have `None`.
    pub ip: Option<PeerIp>,
    /// Port in I2P's 9000–31000 range (0 when no IP is published).
    pub port: u16,
    /// Introducers (firewalled peers only).
    pub introducers: Vec<Introducer>,
    /// Relative cost (lower is preferred); kept for structural fidelity.
    pub cost: u8,
}

/// Lowest arbitrary I2P port (§2.2.2).
pub const PORT_MIN: u16 = 9000;
/// Highest arbitrary I2P port (§2.2.2).
pub const PORT_MAX: u16 = 31000;

impl RouterAddress {
    /// A published NTCP address.
    pub fn published(style: TransportStyle, ip: PeerIp, port: u16) -> Self {
        debug_assert!((PORT_MIN..=PORT_MAX).contains(&port));
        RouterAddress { style, ip: Some(ip), port, introducers: Vec::new(), cost: 10 }
    }

    /// A firewalled SSU address: no IP, but introducers.
    pub fn firewalled(introducers: Vec<Introducer>) -> Self {
        RouterAddress { style: TransportStyle::Ssu, ip: None, port: 0, introducers, cost: 14 }
    }

    /// Encodes into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u8(self.style.tag());
        w.u8(self.cost);
        match self.ip {
            None => w.u8(0),
            Some(PeerIp::V4(v)) => {
                w.u8(4);
                w.u32(v);
            }
            Some(PeerIp::V6(v)) => {
                w.u8(6);
                w.u64((v >> 64) as u64);
                w.u64(v as u64);
            }
        }
        w.u16(self.port);
        w.u8(self.introducers.len() as u8);
        for intro in &self.introducers {
            w.bytes(&intro.router.0);
            match intro.ip {
                PeerIp::V4(v) => {
                    w.u8(4);
                    w.u32(v);
                }
                PeerIp::V6(v) => {
                    w.u8(6);
                    w.u64((v >> 64) as u64);
                    w.u64(v as u64);
                }
            }
            w.u32(intro.tag);
        }
    }

    /// Decodes from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let style = TransportStyle::from_tag(r.u8("address.style")?)
            .ok_or(DecodeError::Invalid { what: "address.style" })?;
        let cost = r.u8("address.cost")?;
        let ip = match r.u8("address.ipkind")? {
            0 => None,
            4 => Some(PeerIp::V4(r.u32("address.ip4")?)),
            6 => {
                let hi = r.u64("address.ip6hi")? as u128;
                let lo = r.u64("address.ip6lo")? as u128;
                Some(PeerIp::V6(hi << 64 | lo))
            }
            _ => return Err(DecodeError::Invalid { what: "address.ipkind" }),
        };
        let port = r.u16("address.port")?;
        let n = r.u8("address.introducer-count")? as usize;
        let mut introducers = Vec::with_capacity(n);
        for _ in 0..n {
            let router = Hash256(r.array32("introducer.router")?);
            let ip = match r.u8("introducer.ipkind")? {
                4 => PeerIp::V4(r.u32("introducer.ip4")?),
                6 => {
                    let hi = r.u64("introducer.ip6hi")? as u128;
                    let lo = r.u64("introducer.ip6lo")? as u128;
                    PeerIp::V6(hi << 64 | lo)
                }
                _ => return Err(DecodeError::Invalid { what: "introducer.ipkind" }),
            };
            let tag = r.u32("introducer.tag")?;
            introducers.push(Introducer { router, ip, tag });
        }
        Ok(RouterAddress { style, ip, port, introducers, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(a: &RouterAddress) -> RouterAddress {
        let mut w = Writer::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = RouterAddress::decode(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn published_v4_roundtrip() {
        let a = RouterAddress::published(TransportStyle::Ntcp, PeerIp::V4(0x0A00_0001), 12345);
        assert_eq!(roundtrip(&a), a);
    }

    #[test]
    fn published_v6_roundtrip() {
        let a = RouterAddress::published(
            TransportStyle::Ssu,
            PeerIp::V6(0x2001_0db8_0000_0000_0000_0000_0000_0001),
            30999,
        );
        assert_eq!(roundtrip(&a), a);
    }

    #[test]
    fn firewalled_roundtrip() {
        let a = RouterAddress::firewalled(vec![
            Introducer { router: Hash256::digest(b"i1"), ip: PeerIp::V4(1), tag: 99 },
            Introducer { router: Hash256::digest(b"i2"), ip: PeerIp::V4(2), tag: 100 },
        ]);
        let b = roundtrip(&a);
        assert_eq!(b, a);
        assert_eq!(b.ip, None);
        assert_eq!(b.introducers.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PeerIp::V4(0x7F00_0001).to_string(), "127.0.0.1");
        assert!(PeerIp::V6(1).to_string().ends_with(":1"));
    }

    #[test]
    fn digest64_distinguishes_families() {
        assert_ne!(PeerIp::V4(1).digest64(), PeerIp::V6(1).digest64());
    }

    #[test]
    fn invalid_style_rejected() {
        let bytes = [9u8, 0, 0, 0, 0, 0];
        let mut r = Reader::new(&bytes);
        assert!(RouterAddress::decode(&mut r).is_err());
    }
}
