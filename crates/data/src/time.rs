//! Simulation time.
//!
//! The emulator runs on a millisecond-resolution virtual clock starting at
//! the (virtual) study epoch — 2018-02-01 00:00 UTC, the first day of the
//! paper's three-month measurement (Hoang et al. §5). Day boundaries are
//! significant: netDb routing keys rotate at UTC midnight (§2.1.2) and the
//! monitoring fleet clears its netDb directory every 24 h (§4.3).

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        Duration(m * 60_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        Duration(h * 3_600_000)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        Duration(d * 86_400_000)
    }

    /// Milliseconds in this span.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

/// An instant on the simulation clock (ms since the study epoch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// Calendar labels for the simulated study period: `(month, first day
/// index)`. Day 0 = 2018-02-01.
const MONTH_STARTS: [(&str, u64); 3] = [("02", 0), ("03", 28), ("04", 59)];

impl SimTime {
    /// The study epoch (2018-02-01 00:00 UTC).
    pub const EPOCH: SimTime = SimTime(0);

    /// Builds an instant `d` days plus `ms` milliseconds after the epoch.
    pub const fn from_day_ms(day: u64, ms: u64) -> Self {
        SimTime(day * 86_400_000 + ms)
    }

    /// The UTC day index since the epoch.
    pub const fn day(self) -> u64 {
        self.0 / 86_400_000
    }

    /// The hour-of-day (0..24).
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % 86_400_000) / 3_600_000
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The `yyyyMMdd`-style date string concatenated into routing keys.
    /// (The exact calendar only matters for display; rotation happens per
    /// simulated UTC day.)
    pub fn date_string(self) -> String {
        let day = self.day();
        let (month, start) = MONTH_STARTS
            .iter()
            .rev()
            .find(|(_, s)| *s <= day % 89)
            .copied()
            .unwrap_or(("02", 0));
        // Beyond the 89-day study window, wrap months but keep strings
        // unique per absolute day by including the day index.
        if day < 89 {
            format!("2018{month}{:02}", day - start + 1)
        } else {
            format!("2018x{day:05}")
        }
    }

    /// Start of this instant's UTC day (routing-key rotation boundary).
    pub const fn day_start(self) -> SimTime {
        SimTime(self.day() * 86_400_000)
    }

    /// Instant `d` later.
    pub const fn plus(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }

    /// Span since `earlier` (saturating).
    pub const fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.plus(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic() {
        let t = SimTime::from_day_ms(3, 5_000);
        assert_eq!(t.day(), 3);
        assert_eq!(t.day_start(), SimTime::from_day_ms(3, 0));
        assert_eq!(t.hour_of_day(), 0);
        let u = t + Duration::from_hours(25);
        assert_eq!(u.day(), 4);
        assert_eq!(u.hour_of_day(), 1);
    }

    #[test]
    fn date_strings_unique_per_day() {
        let mut seen = std::collections::HashSet::new();
        for d in 0..120u64 {
            let s = SimTime::from_day_ms(d, 10).date_string();
            assert!(seen.insert(s.clone()), "duplicate date string {s} on day {d}");
        }
    }

    #[test]
    fn date_string_calendar_labels() {
        assert_eq!(SimTime::from_day_ms(0, 0).date_string(), "20180201");
        assert_eq!(SimTime::from_day_ms(27, 0).date_string(), "20180228");
        assert_eq!(SimTime::from_day_ms(28, 0).date_string(), "20180301");
        assert_eq!(SimTime::from_day_ms(59, 0).date_string(), "20180401");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(300);
        assert_eq!(b.since(a), Duration(200));
        assert_eq!(a.since(b), Duration(0));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_mins(1), Duration::from_secs(60));
        assert_eq!((Duration::from_secs(3) * 2).as_secs_f64(), 6.0);
    }
}
