//! Router identities.
//!
//! A router identity bundles the router's public keys; its SHA-256 hash is
//! the permanent peer identifier — "generated the first time the I2P
//! router software is installed, and never changes throughout its
//! lifetime" (Hoang et al. §5.1).

use crate::codec::{DecodeError, Reader, Writer};
use crate::hash::Hash256;
use i2p_crypto::elgamal::ElGamalPublic;
use i2p_crypto::DetRng;

/// A router's public identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouterIdentity {
    /// Garlic-encryption public key.
    pub enc_key: ElGamalPublic,
    /// Signing public key material (simulation-grade: used as an HMAC
    /// verification key identifier).
    pub sign_key: [u8; 32],
    /// Certificate type byte (0 = null cert, as in classic I2P).
    pub cert: u8,
}

impl RouterIdentity {
    /// Generates a fresh identity from an RNG stream.
    pub fn generate(rng: &mut DetRng) -> (RouterIdentity, IdentitySecrets) {
        let enc_material = rng.next_u64();
        let kp = i2p_crypto::ElGamalKeyPair::from_secret_material(enc_material);
        let mut sign_key = [0u8; 32];
        rng.fill_bytes(&mut sign_key);
        let ident = RouterIdentity { enc_key: kp.public, sign_key, cert: 0 };
        (ident, IdentitySecrets { enc_material, sign_key })
    }

    /// Encodes the identity.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.enc_key.0);
        w.bytes(&self.sign_key);
        w.u8(self.cert);
    }

    /// Decodes an identity.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let enc_key = ElGamalPublic(r.u64("identity.enc_key")?);
        let sign_key = r.array32("identity.sign_key")?;
        let cert = r.u8("identity.cert")?;
        Ok(RouterIdentity { enc_key, sign_key, cert })
    }

    /// The permanent router hash: SHA-256 over the encoded identity.
    pub fn hash(&self) -> Hash256 {
        let mut w = Writer::new();
        self.encode(&mut w);
        Hash256::digest(&w.into_bytes())
    }
}

/// The secret half of an identity (held by the router only).
#[derive(Clone, Debug)]
pub struct IdentitySecrets {
    /// ElGamal secret material.
    pub enc_material: u64,
    /// HMAC signing key (simulation-grade signatures).
    pub sign_key: [u8; 32],
}

impl IdentitySecrets {
    /// Signs `data` (HMAC-SHA256 under the signing key).
    pub fn sign(&self, data: &[u8]) -> [u8; 32] {
        i2p_crypto::hmac_sha256(&self.sign_key, data)
    }

    /// The decryption key pair.
    pub fn enc_keypair(&self) -> i2p_crypto::ElGamalKeyPair {
        i2p_crypto::ElGamalKeyPair::from_secret_material(self.enc_material)
    }
}

/// Verifies a signature made by [`IdentitySecrets::sign`].
///
/// Simulation-grade signatures: the RouterIdentity exposes the HMAC key,
/// so "verification" recomputes the MAC. This preserves the *structural*
/// property the measurements need (RouterInfos are integrity-protected
/// and attributable) without an asymmetric signature scheme.
pub fn verify(ident: &RouterIdentity, data: &[u8], sig: &[u8; 32]) -> bool {
    &i2p_crypto::hmac_sha256(&ident.sign_key, data) == sig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_unique() {
        let mut rng = DetRng::new(1);
        let (a, _) = RouterIdentity::generate(&mut rng);
        let (b, _) = RouterIdentity::generate(&mut rng);
        assert_eq!(a.hash(), a.hash());
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn codec_roundtrip() {
        let mut rng = DetRng::new(2);
        let (ident, _) = RouterIdentity::generate(&mut rng);
        let mut w = Writer::new();
        ident.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(RouterIdentity::decode(&mut r).unwrap(), ident);
    }

    #[test]
    fn sign_verify() {
        let mut rng = DetRng::new(3);
        let (ident, secrets) = RouterIdentity::generate(&mut rng);
        let sig = secrets.sign(b"router info body");
        assert!(verify(&ident, b"router info body", &sig));
        assert!(!verify(&ident, b"tampered body", &sig));
        let (other, _) = RouterIdentity::generate(&mut rng);
        assert!(!verify(&other, b"router info body", &sig));
    }

    #[test]
    fn enc_keypair_matches_public() {
        let mut rng = DetRng::new(4);
        let (ident, secrets) = RouterIdentity::generate(&mut rng);
        assert_eq!(secrets.enc_keypair().public, ident.enc_key);
    }
}
