//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The measurement suite keys almost every map and set by a dense `u32`
//! peer id (or a packed `PeerIp`); the standard library's default
//! SipHash spends most of its time defending against HashDoS that a
//! deterministic simulation cannot experience. This is the rustc /
//! FxHash recipe: rotate, xor, multiply by a large odd constant, one
//! word at a time.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Word-at-a-time multiplicative hasher (the FxHash recipe).
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `2^64 / φ`, the usual Fibonacci-hashing multiplier.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..10_000u32 {
            m.insert(i, i * 2);
            s.insert(i * 3);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m[&77], 154);
        assert!(s.contains(&2997));
        assert!(!s.contains(&2998));
    }

    #[test]
    fn dense_u32_keys_spread_across_buckets() {
        // Low-entropy sequential keys must still differ in their high
        // hash bits (what HashMap's bucket selection consumes).
        let build = FxBuildHasher::default();
        let hashes: FxHashSet<u64> = (0u32..1000)
            .map(|i| {
                use std::hash::BuildHasher;
                build.hash_one(i) >> 48
            })
            .collect();
        assert!(hashes.len() > 900, "only {} distinct high-16 patterns", hashes.len());
    }
}
