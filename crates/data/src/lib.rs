//! # i2p-data — I2P common data structures
//!
//! The wire- and storage-level data model of the emulated I2P network,
//! mirroring the "Common Structures" of the real I2P specification at the
//! granularity the paper's measurements need:
//!
//! * [`hash::Hash256`] — the cryptographic router identifier ("a peer is
//!   defined by a unique hash value encapsulated in its RouterInfo",
//!   Hoang et al. §4.1) with the Kademlia XOR metric.
//! * [`time::SimTime`] — simulation clock; netDb routing keys rotate at
//!   UTC midnight (§2.1.2), so day boundaries matter.
//! * [`caps::Caps`] — capacity flags: bandwidth classes `K..X`, floodfill
//!   `f`, reachability `R`/`U`, hidden `H`, including the `P/X → O`
//!   backwards-compatibility publication rule that §5.3.1 dissects.
//! * [`addr`] — transport addresses, including SSU *introducers* whose
//!   presence/absence distinguishes firewalled from hidden peers (§5.1).
//! * [`routerinfo::RouterInfo`] / [`leaseset::LeaseSet`] — the two kinds
//!   of netDb metadata (§2.1.2), with a binary codec and signatures.
//! * [`codec`] — the big-endian, length-prefixed binary format.
//! * [`fxhash`] — FxHash-style fast hasher for the integer-keyed maps
//!   the measurement suite lives on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod caps;
pub mod codec;
pub mod fxhash;
pub mod hash;
pub mod ident;
pub mod leaseset;
pub mod routerinfo;
pub mod time;

pub use addr::{PeerIp, RouterAddress, TransportStyle};
pub use caps::{BandwidthClass, Caps, CapsString};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hash::Hash256;
pub use ident::RouterIdentity;
pub use leaseset::{Lease, LeaseSet};
pub use routerinfo::RouterInfo;
pub use time::{Duration, SimTime};
