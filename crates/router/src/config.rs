//! Router configuration.

use i2p_data::BandwidthClass;
use i2p_geoip::CountryId;

/// Floodfill operating mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FloodfillMode {
    /// Never a floodfill.
    Disabled,
    /// Manually forced on from the router console — this is how the
    /// paper's unqualified K/L/M floodfills exist (§5.3.1).
    Manual,
    /// Automatic opt-in when the health checks pass (§2.1.2, §5.3.1).
    Auto,
}

/// Network reachability situation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reachability {
    /// Publicly reachable; publishes IP + port.
    Public,
    /// Behind NAT/firewall; publishes introducers instead of an IP
    /// (§5.1's ~14 K firewalled peers).
    Firewalled,
    /// Hidden mode: publishes neither IP nor introducers; relays for
    /// nobody (§5.1's ~4 K hidden peers; default where press freedom
    /// score > 50).
    Hidden,
}

/// Static configuration of one router.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Shared bandwidth in KB/s (determines the published class).
    pub shared_kbps: u32,
    /// Floodfill mode.
    pub floodfill: FloodfillMode,
    /// Reachability.
    pub reachability: Reachability,
    /// Country of residence (drives hidden-by-default and geo analysis).
    pub country: CountryId,
    /// Maximum participating tunnels (the paper's fleet used 10 K, §4.1).
    pub max_participating_tunnels: u32,
    /// Software version advertised in the RouterInfo.
    pub version: &'static str,
}

impl RouterConfig {
    /// The I2P default-ish configuration: L-class, auto floodfill off.
    pub fn default_client(country: CountryId) -> Self {
        RouterConfig {
            shared_kbps: 30,
            floodfill: FloodfillMode::Disabled,
            reachability: Reachability::Public,
            country,
            max_participating_tunnels: 2_000,
            version: "0.9.34",
        }
    }

    /// A high-profile monitoring router per the paper's §4.1 spec:
    /// 8 MB/s shared bandwidth (the bloom-filter cap), 10 K tunnels.
    pub fn monitoring(country: CountryId, floodfill: bool) -> Self {
        RouterConfig {
            shared_kbps: 8_192,
            floodfill: if floodfill { FloodfillMode::Manual } else { FloodfillMode::Disabled },
            reachability: Reachability::Public,
            country,
            max_participating_tunnels: 10_000,
            version: "0.9.34",
        }
    }

    /// The published bandwidth class.
    pub fn bandwidth_class(&self) -> BandwidthClass {
        BandwidthClass::for_shared_kbps(self.shared_kbps)
    }

    /// Whether the automatic floodfill health check can ever pass:
    /// minimum 128 KB/s share requirement (§5.3.1).
    pub fn meets_auto_floodfill_bandwidth(&self) -> bool {
        self.shared_kbps >= 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_spec_matches_paper() {
        let cfg = RouterConfig::monitoring(0, true);
        assert_eq!(cfg.shared_kbps, 8_192);
        assert_eq!(cfg.max_participating_tunnels, 10_000);
        assert_eq!(cfg.bandwidth_class(), BandwidthClass::X);
        assert_eq!(cfg.floodfill, FloodfillMode::Manual);
    }

    #[test]
    fn default_client_is_l_class() {
        let cfg = RouterConfig::default_client(0);
        assert_eq!(cfg.bandwidth_class(), BandwidthClass::L);
        assert!(!cfg.meets_auto_floodfill_bandwidth());
    }

    #[test]
    fn auto_floodfill_threshold() {
        let mut cfg = RouterConfig::default_client(0);
        cfg.shared_kbps = 127;
        assert!(!cfg.meets_auto_floodfill_bandwidth());
        cfg.shared_kbps = 128;
        assert!(cfg.meets_auto_floodfill_bandwidth());
    }
}
