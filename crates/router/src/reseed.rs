//! Reseed servers and manual reseeding.
//!
//! Bootstrapping: "a newly joining peer initially learns a small portion
//! of the netDb … by fetching information about other peers in the
//! network from a set of hardcoded reseed servers" — about 150
//! RouterInfos, roughly 75 from each of two servers (Hoang et al. §4.2).
//! Anti-harvesting: "reseed servers are designed so that they only
//! provide the same set of RouterInfos if the requesting source is the
//! same" (§4). Manual reseeding: any peer can export an `i2pseeds.su3`
//! file and share it out of band when the censor blocks all reseed
//! servers (§6.1).

use i2p_crypto::{hmac_sha256, DetRng};
use i2p_data::{PeerIp, RouterInfo, SimTime};

/// RouterInfos per reseed answer (≈75 each from two servers, §4.2).
pub const RESEED_ANSWER_SIZE: usize = 75;

/// A reseed server: holds a rolling window of RouterInfos it knows.
#[derive(Clone, Debug)]
pub struct ReseedServer {
    /// Server identity salt (distinguishes the hardcoded servers).
    salt: u64,
    /// Known RouterInfos (the server is "equivalent to any other peer …
    /// with the extra ability to announce a small portion of known
    /// routers", §2.1.2).
    known: Vec<RouterInfo>,
    /// Whether the censor blocks this server (reseed blocking, §6.1).
    pub blocked: bool,
}

impl ReseedServer {
    /// Creates a server.
    pub fn new(salt: u64) -> Self {
        ReseedServer { salt, known: Vec::new(), blocked: false }
    }

    /// Refreshes the server's known set.
    pub fn set_known(&mut self, known: Vec<RouterInfo>) {
        self.known = known;
    }

    /// Number of records the server can serve.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// Answers a reseed request from `source`. Deterministic per source
    /// IP: repeated requests from the same address yield the same subset,
    /// defeating cheap crawling (§4). Returns `None` when blocked.
    pub fn answer(&self, source: PeerIp) -> Option<Vec<RouterInfo>> {
        if self.blocked {
            return None;
        }
        if self.known.is_empty() {
            return Some(Vec::new());
        }
        // Derive a per-source permutation seed from HMAC(salt, source).
        let key = self.salt.to_be_bytes();
        let digest = hmac_sha256(&key, &source.digest64().to_be_bytes());
        let seed = u64::from_be_bytes(digest[..8].try_into().unwrap()); // i2plint: allow(panic-audit) -- digest is [u8; 32]; 8 bytes always exist
        let mut rng = DetRng::new(seed);
        let take = RESEED_ANSWER_SIZE.min(self.known.len());
        let idx = rng.sample_indices(self.known.len(), take);
        Some(idx.into_iter().map(|i| self.known[i].clone()).collect())
    }
}

/// A manual reseed file (`i2pseeds.su3`, §6.1): a bundle of RouterInfos
/// exported by a running peer and shared out of band.
#[derive(Clone, Debug, PartialEq)]
pub struct ReseedFile {
    /// Bundled records.
    pub routers: Vec<RouterInfo>,
    /// When the file was created (records age out of usefulness).
    pub created: SimTime,
}

impl ReseedFile {
    /// Exports a reseed file from a peer's netDb view.
    pub fn export(routers: Vec<RouterInfo>, created: SimTime) -> Self {
        ReseedFile { routers, created }
    }

    /// Serialized form (concatenated RouterInfo encodings with a count
    /// header) — so the file can be "shared via a secondary channel".
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(b"su3\x00");
        v.extend_from_slice(&self.created.as_millis().to_be_bytes());
        v.extend_from_slice(&(self.routers.len() as u32).to_be_bytes());
        for r in &self.routers {
            let enc = r.encode();
            v.extend_from_slice(&(enc.len() as u32).to_be_bytes());
            v.extend_from_slice(&enc);
        }
        v
    }

    /// Parses a reseed file.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < 16 || &b[..4] != b"su3\x00" {
            return None;
        }
        let created = SimTime(u64::from_be_bytes(b[4..12].try_into().ok()?));
        let n = u32::from_be_bytes(b[12..16].try_into().ok()?) as usize;
        let mut pos = 16;
        let mut routers = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_be_bytes(b.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let ri = RouterInfo::decode(b.get(pos..pos + len)?).ok()?;
            pos += len;
            routers.push(ri);
        }
        if pos != b.len() {
            return None;
        }
        Some(ReseedFile { routers, created })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2p_data::caps::{BandwidthClass, Caps};
    use i2p_data::ident::RouterIdentity;

    fn make_routers(n: usize, seed: u64) -> Vec<RouterInfo> {
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|_| {
                let (ident, secrets) = RouterIdentity::generate(&mut rng);
                RouterInfo::new_signed(
                    ident,
                    &secrets,
                    SimTime(1),
                    vec![],
                    Caps::standard(BandwidthClass::L),
                    "0.9.34",
                )
            })
            .collect()
    }

    #[test]
    fn same_source_same_answer() {
        let mut srv = ReseedServer::new(1);
        srv.set_known(make_routers(300, 9));
        let a1 = srv.answer(PeerIp::V4(100)).unwrap();
        let a2 = srv.answer(PeerIp::V4(100)).unwrap();
        assert_eq!(a1, a2, "anti-harvesting: per-source determinism");
        assert_eq!(a1.len(), RESEED_ANSWER_SIZE);
    }

    #[test]
    fn different_sources_differ() {
        let mut srv = ReseedServer::new(1);
        srv.set_known(make_routers(300, 10));
        let a = srv.answer(PeerIp::V4(1)).unwrap();
        let b = srv.answer(PeerIp::V4(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn different_servers_differ_for_same_source() {
        let known = make_routers(300, 11);
        let mut s1 = ReseedServer::new(1);
        let mut s2 = ReseedServer::new(2);
        s1.set_known(known.clone());
        s2.set_known(known);
        assert_ne!(s1.answer(PeerIp::V4(5)), s2.answer(PeerIp::V4(5)));
    }

    #[test]
    fn blocked_server_unreachable() {
        let mut srv = ReseedServer::new(1);
        srv.set_known(make_routers(100, 12));
        srv.blocked = true;
        assert_eq!(srv.answer(PeerIp::V4(1)), None);
    }

    #[test]
    fn small_known_set_served_whole() {
        let mut srv = ReseedServer::new(1);
        srv.set_known(make_routers(10, 13));
        assert_eq!(srv.answer(PeerIp::V4(1)).unwrap().len(), 10);
    }

    #[test]
    fn reseed_file_roundtrip() {
        let file = ReseedFile::export(make_routers(5, 14), SimTime(777));
        let bytes = file.to_bytes();
        let back = ReseedFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn reseed_file_rejects_garbage() {
        assert!(ReseedFile::from_bytes(b"nope").is_none());
        let file = ReseedFile::export(make_routers(2, 15), SimTime(1));
        let mut bytes = file.to_bytes();
        bytes.push(0);
        assert!(ReseedFile::from_bytes(&bytes).is_none());
    }
}
