//! The router node.
//!
//! One emulated I2P router: netDb participation (store / lookup / flood),
//! RouterInfo publication with capacity flags, automatic floodfill
//! opt-in, introducer handling for firewalled operation, tunnel building
//! and garlic processing. Routers are *pure state machines*: every
//! handler consumes a message and returns the messages to transmit; the
//! [`crate::net::TestNet`] harness owns delivery and time.

use crate::config::{FloodfillMode, Reachability, RouterConfig};
use crate::net::{AppEvent, EepRequest, EepResponse, NetMsg, Outbound};
use crate::profile::ProfileBook;
use i2p_crypto::DetRng;
use i2p_data::addr::{Introducer, RouterAddress, TransportStyle};
use i2p_data::caps::Caps;
use i2p_data::ident::{IdentitySecrets, RouterIdentity};
use i2p_data::{Duration, Hash256, Lease, LeaseSet, PeerIp, RouterInfo, SimTime};
use i2p_netdb::kbucket::KBucketTable;
use i2p_netdb::messages::{DatabaseLookup, DatabaseStore, LookupKind, NetDbPayload, SearchReply};
use i2p_netdb::store::{NetDbStore, StoreConfig, StoreOutcome, REPLICATION};
use i2p_tunnel::build::TunnelBuildRequest;
use i2p_tunnel::garlic::{Clove, DeliveryInstructions, GarlicMessage};
use i2p_data::FxHashMap;
use i2p_tunnel::pool::{TunnelDirection, TunnelPool};
use i2p_tunnel::select::{select_hops, HopCandidate};

/// Minimum uptime before the automatic floodfill health check passes
/// (stability/uptime tests, Hoang et al. §2.1.2).
pub const AUTO_FLOODFILL_MIN_UPTIME: Duration = Duration::from_hours(2);

/// Tunnel participant state at a relay hop.
#[derive(Clone, Debug)]
pub struct Participant {
    /// The layer key this hop applies.
    pub layer_key: [u8; 32],
    /// Next hop, `None` when this hop is the tunnel's last relay.
    pub next: Option<Hash256>,
    /// When the participation expires.
    pub expires: SimTime,
}

/// An eepsite hosted on this router.
#[derive(Clone, Debug)]
pub struct Eepsite {
    /// The page body served for any path ("a simple and small html
    /// file", §6.2.3).
    pub body: Vec<u8>,
}

/// One emulated router.
///
/// `Clone` supports the scenario lab's substrate forking: a cloned
/// router is an independent copy, and all internal maps hash
/// deterministically, so a clone replays exactly like the original.
#[derive(Clone)]
pub struct Router {
    /// Public identity.
    pub identity: RouterIdentity,
    /// Secret keys.
    pub secrets: IdentitySecrets,
    /// Static configuration.
    pub config: RouterConfig,
    /// When the router started (health checks need uptime).
    pub started: SimTime,
    /// Local netDb.
    pub store: NetDbStore,
    /// Known floodfills (k-bucket table around our hash).
    pub floodfills: KBucketTable,
    /// Peer profiles.
    pub profiles: ProfileBook,
    /// Inbound tunnel pool.
    pub inbound: TunnelPool,
    /// Outbound tunnel pool.
    pub outbound: TunnelPool,
    /// Tunnels this router relays for others (id → state).
    pub participating: FxHashMap<u32, Participant>,
    /// Our public IP (None when firewalled/hidden).
    pub public_ip: Option<PeerIp>,
    /// Our port.
    pub port: u16,
    /// Introducers serving us (firewalled mode).
    pub my_introducers: Vec<Introducer>,
    /// Hosted eepsite, if any.
    pub eepsite: Option<Eepsite>,
    /// Application events (completed fetches etc.) for the harness.
    pub app_events: Vec<AppEvent>,
    /// Pending requests we originated: request id → when sent.
    pub pending_requests: FxHashMap<u64, SimTime>,
    pending_builds: FxHashMap<u32, PendingBuild>,
    hash_cache: Hash256,
}

impl Router {
    /// Creates a router from config; addresses are assigned by the
    /// harness via [`Router::set_network`].
    pub fn new(config: RouterConfig, started: SimTime, rng: &mut DetRng) -> Self {
        let (identity, secrets) = RouterIdentity::generate(rng);
        let hash = identity.hash();
        let floodfill_now = matches!(config.floodfill, FloodfillMode::Manual);
        Router {
            identity,
            secrets,
            config,
            started,
            store: NetDbStore::new(StoreConfig { floodfill: floodfill_now }),
            floodfills: KBucketTable::new(hash),
            profiles: ProfileBook::new(),
            inbound: TunnelPool::new(),
            outbound: TunnelPool::new(),
            participating: FxHashMap::default(),
            public_ip: None,
            port: 0,
            my_introducers: Vec::new(),
            eepsite: None,
            app_events: Vec::new(),
            pending_requests: FxHashMap::default(),
            pending_builds: FxHashMap::default(),
            hash_cache: hash,
        }
    }

    /// The router hash.
    pub fn hash(&self) -> Hash256 {
        self.hash_cache
    }

    /// Assigns network presence (called by the harness).
    pub fn set_network(&mut self, ip: Option<PeerIp>, port: u16, introducers: Vec<Introducer>) {
        self.public_ip = ip;
        self.port = port;
        self.my_introducers = introducers;
    }

    /// Whether this router is acting as a floodfill *now* (manual flag,
    /// or automatic opt-in with passed health checks).
    pub fn is_floodfill(&self, now: SimTime) -> bool {
        match self.config.floodfill {
            FloodfillMode::Disabled => false,
            FloodfillMode::Manual => true,
            FloodfillMode::Auto => {
                self.config.meets_auto_floodfill_bandwidth()
                    && now.since(self.started) >= AUTO_FLOODFILL_MIN_UPTIME
            }
        }
    }

    /// The capacity flags this router publishes at `now`.
    pub fn current_caps(&self, now: SimTime) -> Caps {
        Caps {
            bandwidth: self.config.bandwidth_class(),
            floodfill: self.is_floodfill(now),
            reachable: matches!(self.config.reachability, Reachability::Public),
            hidden: matches!(self.config.reachability, Reachability::Hidden),
        }
    }

    /// Builds and signs this router's current RouterInfo.
    pub fn make_router_info(&self, now: SimTime) -> RouterInfo {
        let addresses = match self.config.reachability {
            Reachability::Public => {
                let ip = self.public_ip.expect("public router needs an IP"); // i2plint: allow(panic-audit) -- Public reachability implies a published IP
                vec![
                    RouterAddress::published(TransportStyle::Ntcp, ip, self.port),
                    RouterAddress::published(TransportStyle::Ssu, ip, self.port),
                ]
            }
            Reachability::Firewalled => {
                vec![RouterAddress::firewalled(self.my_introducers.clone())]
            }
            Reachability::Hidden => Vec::new(),
        };
        RouterInfo::new_signed(
            self.identity,
            &self.secrets,
            now,
            addresses,
            self.current_caps(now),
            self.config.version,
        )
    }

    /// Ingests a RouterInfo (from reseed, lookup reply, store, …),
    /// updating the floodfill table and profiles.
    pub fn learn_router(&mut self, ri: RouterInfo, now: SimTime) {
        let hash = ri.hash();
        if hash == self.hash() {
            return;
        }
        let caps = ri.caps;
        if self.store.offer(NetDbPayload::RouterInfo(ri), now) == StoreOutcome::BadSignature {
            return;
        }
        if caps.floodfill {
            self.floodfills.insert(hash);
        } else {
            self.floodfills.remove(&hash);
        }
        self.profiles.entry(hash, caps.bandwidth, now);
    }

    /// The floodfills to publish a record to: [`REPLICATION`] closest to
    /// the record's daily routing key.
    pub fn publish_targets(&self, key: &Hash256, now: SimTime) -> Vec<Hash256> {
        let ffs: Vec<Hash256> = self.floodfills.iter().copied().collect();
        NetDbStore::closest_floodfills(key, &ffs, now, REPLICATION)
    }

    /// Publishes our RouterInfo to the netDb (direct DSM to the closest
    /// floodfills).
    pub fn publish_self(&mut self, now: SimTime) -> Vec<Outbound> {
        let ri = self.make_router_info(now);
        let key = ri.hash();
        // Keep our own record locally too.
        self.store.offer(NetDbPayload::RouterInfo(ri.clone()), now);
        self.publish_targets(&key, now)
            .into_iter()
            .map(|ff| Outbound {
                to: ff,
                msg: NetMsg::Store(DatabaseStore {
                    payload: NetDbPayload::RouterInfo(ri.clone()),
                    reply_token: 1,
                    flooded: false,
                }),
            })
            .collect()
    }

    /// Publishes a LeaseSet for our hosted destination.
    pub fn publish_leaseset(&mut self, now: SimTime) -> Vec<Outbound> {
        let leases: Vec<Lease> = self
            .inbound
            .live(now)
            .filter_map(|t| {
                Some(Lease {
                    gateway: t.gateway()?,
                    tunnel_id: t.id,
                    end_date: t.built + i2p_tunnel::pool::TUNNEL_LIFETIME,
                })
            })
            .take(16)
            .collect();
        let ls = LeaseSet::new_signed(self.identity, &self.secrets, leases);
        let key = ls.dest_hash();
        self.store.offer(NetDbPayload::LeaseSet(ls.clone()), now);
        self.publish_targets(&key, now)
            .into_iter()
            .map(|ff| Outbound {
                to: ff,
                msg: NetMsg::Store(DatabaseStore {
                    payload: NetDbPayload::LeaseSet(ls.clone()),
                    reply_token: 1,
                    flooded: false,
                }),
            })
            .collect()
    }

    /// Candidate hops for tunnels: reachable, non-hidden peers we have
    /// RouterInfos for, weighted by profile (failure streaks decay with
    /// time).
    pub fn hop_candidates(&self) -> Vec<HopCandidate> {
        self.hop_candidates_at(SimTime(u64::MAX / 2))
    }

    /// Candidate hops at `now` (time-aware failure decay). Hashes come
    /// from the store's keys — this runs once per build attempt, and
    /// re-deriving a digest per stored record dominated build launches.
    pub fn hop_candidates_at(&self, now: SimTime) -> Vec<HopCandidate> {
        let me = self.hash();
        self.store
            .router_infos_keyed()
            .filter(|(hash, ri)| ri.caps.reachable && !ri.caps.hidden && **hash != me)
            .map(|(hash, _)| HopCandidate {
                hash: *hash,
                weight: self.profiles.weight_at(hash, now),
            })
            .collect()
    }

    /// Starts building a tunnel of `length` hops. For inbound tunnels the
    /// hop list ends with ourselves (we are the final receiver); for
    /// outbound tunnels it is pure relays. Returns the messages to send
    /// (build request to the first hop) and the tunnel id, or `None` if
    /// there aren't enough usable candidates.
    pub fn start_tunnel_build(
        &mut self,
        direction: TunnelDirection,
        length: usize,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Option<(Vec<Outbound>, u32)> {
        let candidates = self.hop_candidates_at(now);
        let hops = select_hops(&candidates, length, rng)?;
        // Random id: participants across the network key tunnels by id,
        // so ids must not collide between originators.
        let tunnel_id = rng.next_u32();
        // Resolve each hop's garlic key from its RouterInfo.
        let mut keyed: Vec<(Hash256, i2p_crypto::elgamal::ElGamalPublic)> = Vec::new();
        for h in &hops {
            keyed.push((*h, self.store.router_info(h)?.identity.enc_key));
        }
        if direction == TunnelDirection::Inbound {
            // We are the endpoint of our own inbound tunnel.
            keyed.push((self.hash(), self.identity.enc_key));
        }
        let (req, keys) = TunnelBuildRequest::create(tunnel_id, &keyed, rng);
        let pending = PendingBuild {
            direction,
            hops: hops.clone(),
            keys,
            started: now,
        };
        self.pending_builds.insert(tunnel_id, pending);
        let first = hops.first().copied().unwrap_or(self.hash());
        self.record_attempt(direction);
        Some((
            vec![Outbound {
                to: first,
                msg: NetMsg::TunnelBuild { request: req, originator: self.hash() },
            }],
            tunnel_id,
        ))
    }

    fn record_attempt(&mut self, direction: TunnelDirection) {
        match direction {
            TunnelDirection::Inbound => self.inbound.record_attempt(),
            TunnelDirection::Outbound => self.outbound.record_attempt(),
        }
    }

    /// Gives up on a pending build (timeout); penalises the hops.
    pub fn fail_pending_build(&mut self, tunnel_id: u32, now: SimTime) {
        if let Some(p) = self.pending_builds.remove(&tunnel_id) {
            for h in &p.hops {
                self.profiles
                    .entry(*h, i2p_data::BandwidthClass::L, now)
                    .record_failure(now);
            }
            match p.direction {
                TunnelDirection::Inbound => self.inbound.record_failure(),
                TunnelDirection::Outbound => self.outbound.record_failure(),
            }
        }
    }

    /// Whether a build is still pending.
    pub fn build_pending(&self, tunnel_id: u32) -> bool {
        self.pending_builds.contains_key(&tunnel_id)
    }

    /// Handles one incoming message, returning outbound messages.
    pub fn handle(&mut self, msg: NetMsg, now: SimTime, rng: &mut DetRng) -> Vec<Outbound> {
        match msg {
            NetMsg::Store(dsm) => self.on_store(dsm, now),
            NetMsg::Lookup(dlm) => self.on_lookup(dlm, now, rng),
            NetMsg::SearchReplyMsg(reply) => {
                for ri in reply.routers {
                    self.learn_router(ri, now);
                }
                Vec::new()
            }
            NetMsg::TunnelBuild { request, originator } => {
                self.on_tunnel_build(request, originator, now)
            }
            NetMsg::TunnelBuildReply { tunnel_id, ok } => {
                self.on_build_reply(tunnel_id, ok, now);
                Vec::new()
            }
            NetMsg::TunnelData { tunnel_id, deliver_to, garlic } => {
                self.on_tunnel_data(tunnel_id, deliver_to, garlic, now, rng)
            }
            NetMsg::Garlic(g) => self.on_garlic(g, now, rng),
            NetMsg::RelayIntro { target, inner } => {
                // We are an introducer for `target`: forward.
                vec![Outbound { to: target, msg: *inner }]
            }
            NetMsg::PeerUnreachable { peer } => {
                self.on_peer_unreachable(peer, now);
                Vec::new()
            }
        }
    }

    /// Reacts to an active-reset signal: every in-flight tunnel build
    /// whose first hop is the refused peer has provably failed, so it is
    /// abandoned (and the hops penalised) immediately instead of waiting
    /// out the attempt timeout — the fail-fast behaviour that separates
    /// an RST-injecting censor from a null-routing one.
    pub fn on_peer_unreachable(&mut self, peer: Hash256, now: SimTime) {
        let mut failed: Vec<u32> = self
            .pending_builds
            .iter()
            .filter(|(_, p)| p.hops.first() == Some(&peer))
            .map(|(id, _)| *id)
            .collect();
        // Sorted so the profile penalties apply in a map-order-free way.
        failed.sort_unstable();
        for id in failed {
            self.fail_pending_build(id, now);
        }
    }

    fn on_store(&mut self, dsm: DatabaseStore, now: SimTime) -> Vec<Outbound> {
        let key = dsm.payload.search_key();
        // Track floodfill-ness and profiles for RouterInfos.
        if let NetDbPayload::RouterInfo(ri) = &dsm.payload {
            let caps = ri.caps;
            let hash = ri.hash();
            if hash != self.hash() {
                if caps.floodfill {
                    self.floodfills.insert(hash);
                }
                self.profiles.entry(hash, caps.bandwidth, now);
            }
        }
        let outcome = self.store.offer(dsm.payload.clone(), now);
        // Flooding: a floodfill that accepted a *newer* record via a
        // direct (non-flooded) DSM floods it to its 3 closest floodfills
        // (§4.2).
        if self.store.is_floodfill()
            && outcome == StoreOutcome::StoredNewer
            && !dsm.flooded
        {
            let ffs: Vec<Hash256> = self
                .floodfills
                .iter()
                .copied()
                .filter(|f| *f != self.hash())
                .collect();
            return NetDbStore::closest_floodfills(&key, &ffs, now, REPLICATION)
                .into_iter()
                .map(|ff| Outbound {
                    to: ff,
                    msg: NetMsg::Store(DatabaseStore {
                        payload: dsm.payload.clone(),
                        reply_token: 0,
                        flooded: true,
                    }),
                })
                .collect();
        }
        Vec::new()
    }

    fn on_lookup(&mut self, dlm: DatabaseLookup, now: SimTime, rng: &mut DetRng) -> Vec<Outbound> {
        let found: Option<NetDbPayload> = match dlm.kind {
            LookupKind::RouterInfo => self
                .store
                .router_info(&dlm.key)
                .cloned()
                .map(NetDbPayload::RouterInfo),
            LookupKind::LeaseSet => self
                .store
                .lease_set(&dlm.key)
                .cloned()
                .map(NetDbPayload::LeaseSet),
            LookupKind::Exploratory => None,
        };
        let wrap_reply = |msg: NetMsg| -> Outbound {
            match dlm.reply_via {
                Some(via) if via != dlm.from => Outbound {
                    to: via,
                    msg: NetMsg::RelayIntro { target: dlm.from, inner: Box::new(msg) },
                },
                _ => Outbound { to: dlm.from, msg },
            }
        };
        if let Some(payload) = found {
            return vec![wrap_reply(NetMsg::Store(DatabaseStore {
                payload,
                reply_token: 0,
                flooded: true,
            }))];
        }
        // Not found (or exploratory): reply with closer floodfills and a
        // harvest sample of RouterInfos.
        let ffs: Vec<Hash256> = self
            .floodfills
            .iter()
            .copied()
            .filter(|f| !dlm.exclude.contains(f))
            .collect();
        let closer = NetDbStore::closest_floodfills(&dlm.key, &ffs, now, REPLICATION);
        // Sample by reference, clone only the picked records — this runs
        // on every lookup, and cloning the whole store to keep 8 records
        // dominated the reply path.
        let all: Vec<&RouterInfo> = self.store.router_infos().collect();
        let sample_n = 8.min(all.len());
        let routers = rng
            .sample_indices(all.len(), sample_n)
            .into_iter()
            .map(|i| all[i].clone())
            .collect();
        vec![wrap_reply(NetMsg::SearchReplyMsg(SearchReply { key: dlm.key, closer, routers }))]
    }

    fn on_tunnel_build(
        &mut self,
        request: TunnelBuildRequest,
        originator: Hash256,
        now: SimTime,
    ) -> Vec<Outbound> {
        let me = self.hash();
        let keypair = self.secrets.enc_keypair();
        let Some(record) = request.process_as(&me, &keypair) else {
            return Vec::new(); // not for us; drop
        };
        // Capacity check: refuse when over the participating-tunnel cap
        // (the §4.1 penalty scenario).
        if self.participating.len() as u32 >= self.config.max_participating_tunnels {
            return vec![Outbound {
                to: originator,
                msg: NetMsg::TunnelBuildReply { tunnel_id: record.tunnel_id, ok: false },
            }];
        }
        if record.next_hop.is_none() && originator == me {
            // Our own inbound tunnel's terminal record arrived back at
            // us: the whole hop chain worked, so the build succeeded.
            self.on_build_reply(record.tunnel_id, true, now);
            return Vec::new();
        }
        self.participating.insert(
            record.tunnel_id,
            Participant {
                layer_key: record.layer_key,
                next: record.next_hop,
                expires: now + i2p_tunnel::pool::TUNNEL_LIFETIME,
            },
        );
        let mut out = Vec::new();
        match record.next_hop {
            Some(next) if next != originator => {
                out.push(Outbound {
                    to: next,
                    msg: NetMsg::TunnelBuild { request, originator },
                });
            }
            _ => {
                // Last relay (or next is the originator itself): confirm.
                out.push(Outbound {
                    to: originator,
                    msg: NetMsg::TunnelBuildReply { tunnel_id: record.tunnel_id, ok: true },
                });
            }
        }
        out
    }

    fn on_build_reply(&mut self, tunnel_id: u32, ok: bool, now: SimTime) {
        let Some(pending) = self.pending_builds.remove(&tunnel_id) else {
            return;
        };
        if !ok {
            for h in &pending.hops {
                self.profiles
                    .entry(*h, i2p_data::BandwidthClass::L, now)
                    .record_failure(now);
            }
            match pending.direction {
                TunnelDirection::Inbound => self.inbound.record_failure(),
                TunnelDirection::Outbound => self.outbound.record_failure(),
            }
            return;
        }
        for h in &pending.hops {
            self.profiles
                .entry(*h, i2p_data::BandwidthClass::L, now)
                .record_success(64.0, now);
        }
        match pending.direction {
            TunnelDirection::Inbound => {
                self.inbound.add_with_id(tunnel_id, TunnelDirection::Inbound, pending.hops, now);
            }
            TunnelDirection::Outbound => {
                self.outbound.add_with_id(tunnel_id, TunnelDirection::Outbound, pending.hops, now);
            }
        }
    }

    fn on_tunnel_data(
        &mut self,
        tunnel_id: u32,
        deliver_to: Option<(Hash256, u32)>,
        garlic: GarlicMessage,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Vec<Outbound> {
        if let Some(part) = self.participating.get(&tunnel_id) {
            if part.expires <= now {
                self.participating.remove(&tunnel_id);
                return Vec::new();
            }
            return match part.next {
                Some(next) => vec![Outbound {
                    to: next,
                    msg: NetMsg::TunnelData { tunnel_id, deliver_to, garlic },
                }],
                None => {
                    // We are the outbound endpoint: apply the inter-tunnel
                    // delivery instruction.
                    match deliver_to {
                        Some((gateway, gw_tunnel)) if gateway == self.hash() => {
                            // We are also the gateway of the target
                            // inbound tunnel: inject directly.
                            vec![Outbound {
                                to: gateway,
                                msg: NetMsg::TunnelData {
                                    tunnel_id: gw_tunnel,
                                    deliver_to: None,
                                    garlic,
                                },
                            }]
                        }
                        Some((gateway, gw_tunnel)) => vec![Outbound {
                            to: gateway,
                            msg: NetMsg::TunnelData {
                                tunnel_id: gw_tunnel,
                                deliver_to: None,
                                garlic,
                            },
                        }],
                        None => Vec::new(), // nowhere to go; drop
                    }
                }
            };
        }
        // Unknown participation: perhaps it is a tunnel we own (we are
        // the inbound endpoint) — try to open the garlic.
        self.on_garlic(garlic, now, rng)
    }

    fn on_garlic(&mut self, garlic: GarlicMessage, now: SimTime, rng: &mut DetRng) -> Vec<Outbound> {
        let keypair = self.secrets.enc_keypair();
        let Some(cloves) = garlic.open(&keypair) else {
            return Vec::new(); // not for us
        };
        let mut out = Vec::new();
        for clove in cloves {
            match clove.instructions {
                DeliveryInstructions::Local => {
                    out.extend(self.on_app_payload(&clove.payload, now, rng));
                }
                DeliveryInstructions::Router(h) => {
                    // Re-seal towards the next router is out of scope;
                    // forward raw app payload via direct garlic if we
                    // know the router.
                    if let Some(ri) = self.store.router_info(&h) {
                        let g = GarlicMessage::seal(
                            &[Clove { instructions: DeliveryInstructions::Local, payload: clove.payload.clone() }],
                            ri.identity.enc_key,
                            rng,
                        );
                        out.push(Outbound { to: h, msg: NetMsg::Garlic(g) });
                    }
                }
                DeliveryInstructions::Tunnel { gateway, tunnel_id } => {
                    // Forward the (still-sealed) garlic into the named
                    // tunnel; the gateway treats it as opaque bytes.
                    out.push(Outbound {
                        to: gateway,
                        msg: NetMsg::TunnelData { tunnel_id, deliver_to: None, garlic: garlic.clone() },
                    });
                }
            }
        }
        out
    }

    /// Handles an application-layer payload revealed from a Local clove.
    fn on_app_payload(&mut self, payload: &[u8], now: SimTime, rng: &mut DetRng) -> Vec<Outbound> {
        if let Some(req) = EepRequest::from_bytes(payload) {
            // We are the eepsite: serve the page back through our
            // outbound tunnel toward the requester's inbound gateway.
            let Some(site) = &self.eepsite else {
                return Vec::new();
            };
            let resp = EepResponse { request_id: req.request_id, body: site.body.clone() };
            let garlic = GarlicMessage::seal(
                &[Clove {
                    instructions: DeliveryInstructions::Local,
                    payload: resp.to_bytes(),
                }],
                req.reply_key,
                rng,
            );
            let Some(out_tunnel) = self.outbound.freshest(now).cloned() else {
                self.app_events.push(AppEvent::ServeFailedNoTunnel { request_id: req.request_id });
                return Vec::new();
            };
            let first = out_tunnel.hops.first().copied();
            self.app_events.push(AppEvent::Served { request_id: req.request_id, at: now });
            return match first {
                Some(first_hop) => vec![Outbound {
                    to: first_hop,
                    msg: NetMsg::TunnelData {
                        tunnel_id: out_tunnel.id,
                        deliver_to: Some((req.reply_gateway, req.reply_tunnel)),
                        garlic,
                    },
                }],
                None => vec![Outbound {
                    to: req.reply_gateway,
                    msg: NetMsg::TunnelData { tunnel_id: req.reply_tunnel, deliver_to: None, garlic },
                }],
            };
        }
        if let Some(resp) = EepResponse::from_bytes(payload) {
            if self.pending_requests.remove(&resp.request_id).is_some() {
                self.app_events.push(AppEvent::FetchCompleted {
                    request_id: resp.request_id,
                    at: now,
                    body_len: resp.body.len(),
                });
            }
            return Vec::new();
        }
        Vec::new()
    }

    /// Originates an eepsite fetch through our tunnels. Requires a live
    /// outbound tunnel, a live inbound tunnel, and the destination's
    /// LeaseSet in our store. Returns the messages plus the request id.
    pub fn start_fetch(
        &mut self,
        dest: &Hash256,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Option<(Vec<Outbound>, u64)> {
        let ls = self.store.lease_set(dest)?.clone();
        let lease = ls.live_leases(now).next()?;
        let dest_key = ls.destination.enc_key;
        let in_tunnel = self.inbound.freshest(now)?.clone();
        let out_tunnel = self.outbound.freshest(now)?.clone();
        let request_id = rng.next_u64();
        let req = EepRequest {
            request_id,
            path: "/index.html".to_string(),
            reply_gateway: in_tunnel.gateway()?,
            reply_tunnel: in_tunnel.id,
            reply_key: self.identity.enc_key,
        };
        let garlic = GarlicMessage::seal(
            &[Clove { instructions: DeliveryInstructions::Local, payload: req.to_bytes() }],
            dest_key,
            rng,
        );
        self.pending_requests.insert(request_id, now);
        let msgs = match out_tunnel.hops.first().copied() {
            Some(first_hop) => vec![Outbound {
                to: first_hop,
                msg: NetMsg::TunnelData {
                    tunnel_id: out_tunnel.id,
                    deliver_to: Some((lease.gateway, lease.tunnel_id)),
                    garlic,
                },
            }],
            None => vec![Outbound {
                to: lease.gateway,
                msg: NetMsg::TunnelData { tunnel_id: lease.tunnel_id, deliver_to: None, garlic },
            }],
        };
        Some((msgs, request_id))
    }

    /// Housekeeping: expire tunnels, participations, netDb entries.
    pub fn tick(&mut self, now: SimTime) {
        self.inbound.expire(now);
        self.outbound.expire(now);
        self.participating.retain(|_, p| p.expires > now);
        self.store.expire(now);
    }

    /// Pending builds map (exposed for harness timeouts).
    pub fn pending_build_ids(&self) -> Vec<u32> {
        self.pending_builds.keys().copied().collect()
    }

    /// Exports a manual-reseed view of our netDb (§6.1).
    pub fn export_reseed(&self, now: SimTime) -> crate::reseed::ReseedFile {
        crate::reseed::ReseedFile::export(self.store.router_infos().cloned().collect(), now)
    }
}

/// A build in flight.
#[derive(Clone, Debug)]
struct PendingBuild {
    direction: TunnelDirection,
    hops: Vec<Hash256>,
    #[allow(dead_code)]
    keys: Vec<[u8; 32]>,
    #[allow(dead_code)]
    started: SimTime,
}
