//! Peer profiling and selection weights.
//!
//! I2P routers continuously score the peers they interact with; the
//! profile drives tunnel-hop selection. "These are all situations under
//! which a router would be penalized by the I2P ranking algorithm and
//! therefore have less chances of being chosen to participate in peers'
//! tunnels" (Hoang et al. §4.1). We model the three classic profile
//! dimensions (speed, capacity, integration) plus a failure count, and
//! derive the selection weight used by `i2p_tunnel::select`.

use i2p_data::{BandwidthClass, FxHashMap, Hash256, SimTime};

/// Profile tier, recomputed from scores.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Tier {
    /// Recently failing peers — excluded from selection.
    Failing,
    /// Everyone else.
    Standard,
    /// High capacity: accepts tunnels reliably.
    HighCapacity,
    /// Fast *and* high capacity — preferred for client tunnels.
    Fast,
}

/// One peer's profile.
#[derive(Clone, Debug)]
pub struct PeerProfile {
    /// Advertised bandwidth class (from its RouterInfo).
    pub bandwidth: BandwidthClass,
    /// Observed throughput score (EWMA, arbitrary units).
    pub speed: f64,
    /// Tunnel-acceptance capacity score.
    pub capacity: f64,
    /// Integration: how well-connected the peer appears (floodfills and
    /// long-lived peers integrate more).
    pub integration: f64,
    /// Consecutive recent failures.
    pub recent_failures: u32,
    /// When the last failure happened (failure streaks decay: a peer is
    /// not condemned forever for a bad stretch).
    pub last_failure: SimTime,
    /// Last time we interacted.
    pub last_seen: SimTime,
}

/// Failure streaks older than this are forgiven (the I2P profiler uses
/// decaying failure statistics).
pub const FAILURE_DECAY: i2p_data::Duration = i2p_data::Duration::from_mins(10);

impl PeerProfile {
    /// Fresh profile seeded from the advertised bandwidth class.
    pub fn new(bandwidth: BandwidthClass, now: SimTime) -> Self {
        let base = bandwidth.nominal_kbps() as f64;
        PeerProfile {
            bandwidth,
            speed: base,
            capacity: base / 4.0,
            integration: 0.0,
            recent_failures: 0,
            last_failure: SimTime(0),
            last_seen: now,
        }
    }

    /// Records a successful interaction (tunnel joined, message relayed).
    pub fn record_success(&mut self, throughput_kbps: f64, now: SimTime) {
        self.speed = 0.9 * self.speed + 0.1 * throughput_kbps;
        self.capacity = (self.capacity + 1.0).min(1e6);
        self.recent_failures = 0;
        self.last_seen = now;
    }

    /// Records a failure (rejection, timeout). Streaks decay: a failure
    /// long after the previous one starts a fresh streak instead of
    /// extending a stale one.
    pub fn record_failure(&mut self, now: SimTime) {
        self.capacity = (self.capacity * 0.8).max(0.0);
        if now.since(self.last_failure) > FAILURE_DECAY {
            self.recent_failures = 1;
        } else {
            self.recent_failures += 1;
        }
        self.last_failure = now;
        self.last_seen = now;
    }

    /// Records evidence of integration (e.g. the peer answered lookups).
    pub fn record_integration(&mut self, now: SimTime) {
        self.integration += 1.0;
        self.last_seen = now;
    }

    /// The peer's tier.
    pub fn tier(&self) -> Tier {
        if self.recent_failures >= 3 {
            return Tier::Failing;
        }
        let fast_speed = self.speed >= 256.0;
        let high_cap = self.capacity >= 32.0;
        match (fast_speed, high_cap) {
            (true, true) => Tier::Fast,
            (_, true) => Tier::HighCapacity,
            _ => Tier::Standard,
        }
    }

    /// The peer's tier at `now`: failure streaks older than
    /// [`FAILURE_DECAY`] no longer condemn the peer.
    pub fn tier_at(&self, now: SimTime) -> Tier {
        if self.recent_failures >= 3 && now.since(self.last_failure) > FAILURE_DECAY {
            // Stale streak: judge on capacity/speed alone.
            let fast_speed = self.speed >= 256.0;
            let high_cap = self.capacity >= 32.0;
            return match (fast_speed, high_cap) {
                (true, true) => Tier::Fast,
                (_, true) => Tier::HighCapacity,
                _ => Tier::Standard,
            };
        }
        self.tier()
    }

    /// Tunnel-selection weight: bandwidth-class base scaled by tier.
    /// Failing peers get 0 ("less chances of being chosen", §4.1).
    pub fn selection_weight(&self) -> u32 {
        self.weight_for_tier(self.tier())
    }

    /// Selection weight at `now` (failure streaks decay).
    pub fn selection_weight_at(&self, now: SimTime) -> u32 {
        self.weight_for_tier(self.tier_at(now))
    }

    fn weight_for_tier(&self, tier: Tier) -> u32 {
        let base = self.bandwidth.nominal_kbps();
        match tier {
            Tier::Failing => 0,
            Tier::Standard => base / 4 + 1,
            Tier::HighCapacity => base / 2 + 1,
            Tier::Fast => base + 1,
        }
    }
}

/// All profiles a router keeps.
///
/// Backed by the deterministic [`FxHashMap`]: the book is consulted
/// once per hop candidate on every tunnel build, and a deterministic
/// hasher keeps cloned routers (scenario-lab forks) replaying
/// identically.
#[derive(Clone, Debug, Default)]
pub struct ProfileBook {
    profiles: FxHashMap<Hash256, PeerProfile>,
}

impl ProfileBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets-or-creates the profile for `peer`.
    pub fn entry(&mut self, peer: Hash256, bandwidth: BandwidthClass, now: SimTime) -> &mut PeerProfile {
        self.profiles
            .entry(peer)
            .or_insert_with(|| PeerProfile::new(bandwidth, now))
    }

    /// Read-only lookup.
    pub fn get(&self, peer: &Hash256) -> Option<&PeerProfile> {
        self.profiles.get(peer)
    }

    /// Number of profiled peers.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no peers are profiled.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Selection weight for `peer` (0 when unknown — never select blind).
    pub fn weight(&self, peer: &Hash256) -> u32 {
        self.get(peer).map_or(0, |p| p.selection_weight())
    }

    /// Selection weight at `now` (failure streaks decay).
    pub fn weight_at(&self, peer: &Hash256, now: SimTime) -> u32 {
        self.get(peer).map_or(0, |p| p.selection_weight_at(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_profile_tier_follows_bandwidth() {
        let now = SimTime(0);
        assert_eq!(PeerProfile::new(BandwidthClass::K, now).tier(), Tier::Standard);
        // X class starts fast+high-capacity.
        assert_eq!(PeerProfile::new(BandwidthClass::X, now).tier(), Tier::Fast);
    }

    #[test]
    fn failures_demote_to_failing_and_zero_weight() {
        let mut p = PeerProfile::new(BandwidthClass::O, SimTime(0));
        for _ in 0..3 {
            p.record_failure(SimTime(1));
        }
        assert_eq!(p.tier(), Tier::Failing);
        assert_eq!(p.selection_weight(), 0);
        // One success rehabilitates.
        p.record_success(100.0, SimTime(2));
        assert_ne!(p.tier(), Tier::Failing);
        assert!(p.selection_weight() > 0);
    }

    #[test]
    fn higher_bandwidth_weighs_more() {
        let now = SimTime(0);
        let k = PeerProfile::new(BandwidthClass::K, now).selection_weight();
        let l = PeerProfile::new(BandwidthClass::L, now).selection_weight();
        let x = PeerProfile::new(BandwidthClass::X, now).selection_weight();
        assert!(k < l && l < x, "k={k} l={l} x={x}");
    }

    #[test]
    fn success_improves_speed_score() {
        let mut p = PeerProfile::new(BandwidthClass::L, SimTime(0));
        let before = p.speed;
        for _ in 0..30 {
            p.record_success(4000.0, SimTime(1));
        }
        assert!(p.speed > before * 2.0);
        assert_eq!(p.tier(), Tier::Fast);
    }

    #[test]
    fn book_weight_unknown_is_zero() {
        let book = ProfileBook::new();
        assert_eq!(book.weight(&Hash256::digest(b"x")), 0);
    }

    #[test]
    fn book_entry_creates_once() {
        let mut book = ProfileBook::new();
        let h = Hash256::digest(b"p");
        book.entry(h, BandwidthClass::L, SimTime(0)).record_integration(SimTime(0));
        book.entry(h, BandwidthClass::X, SimTime(1)); // class ignored on reuse
        assert_eq!(book.len(), 1);
        assert_eq!(book.get(&h).unwrap().integration, 1.0);
        assert_eq!(book.get(&h).unwrap().bandwidth, BandwidthClass::L);
    }
}
