//! # i2p-router — the full I2P router node
//!
//! Integrates the substrate crates into a working router, plus an
//! in-memory network harness for protocol-level experiments:
//!
//! * [`profile`] — peer profiling and tiering in the spirit of zzz &
//!   Schimmer, *Peer Profiling and Selection in the I2P Anonymous
//!   Network* (the paper's ranking-algorithm reference in §4.1): speed,
//!   capacity and integration scores feed tunnel-hop selection weights.
//! * [`config`] — router configuration: bandwidth class, floodfill mode
//!   (manual/auto), firewalled/hidden status, country.
//! * [`reseed`] — reseed servers with the per-source-IP deterministic
//!   answer set (§4's anti-harvesting) and the `i2pseeds.su3` manual
//!   reseed file (§6.1).
//! * [`router`] — the router proper: netDb handling (store, lookup,
//!   flood), RouterInfo publication, automatic floodfill opt-in health
//!   checks (§5.3.1), introducer selection for firewalled peers (§5.1),
//!   tunnel building and garlic processing.
//! * [`net`] — `TestNet`: a deterministic, event-queued in-memory network
//!   of routers over the simulated [`i2p_transport::Fabric`]; this is
//!   what the usability experiment (Fig. 14) and the integration tests
//!   run on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod net;
pub mod profile;
pub mod reseed;
pub mod router;

pub use config::RouterConfig;
pub use net::{NetMsg, TestNet};
pub use profile::{PeerProfile, ProfileBook, Tier};
pub use reseed::{ReseedFile, ReseedServer, RESEED_ANSWER_SIZE};
pub use router::Router;
