//! `TestNet`: a deterministic in-memory network of routers.
//!
//! Routers exchange [`NetMsg`]s over the simulated
//! [`i2p_transport::Fabric`]; delivery latency comes from the fabric's
//! deterministic link model, and the censor's blocklist (if installed)
//! null-routes traffic exactly as in Hoang et al. §6.2.3. A binary-heap
//! event queue keeps everything ordered and reproducible.
//!
//! Fidelity notes (documented simplifications, see DESIGN.md):
//!
//! * Garlic messages stay end-to-end sealed across tunnels (relays can
//!   never read them); the per-hop *layer* encryption is implemented and
//!   tested in `i2p_tunnel::layered` but the harness routes the sealed
//!   garlic directly, since the experiments only consume reachability
//!   and timing.
//! * Relay hops resolve next-hop endpoints through the harness registry
//!   (in real I2P the build message carries the next hop's contact
//!   info).

use crate::config::{Reachability, RouterConfig};
use crate::reseed::ReseedServer;
use crate::router::Router;
use i2p_crypto::elgamal::ElGamalPublic;
use i2p_crypto::DetRng;
use i2p_data::addr::{Introducer, PORT_MAX, PORT_MIN};
use i2p_data::{Duration, Hash256, PeerIp, SimTime};
use i2p_netdb::messages::{DatabaseLookup, DatabaseStore, SearchReply};
use i2p_transport::fabric::{DeliveryOutcome, Endpoint, Fabric};
use i2p_tunnel::build::TunnelBuildRequest;
use i2p_tunnel::garlic::GarlicMessage;
use i2p_data::FxHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message between routers.
#[derive(Clone, Debug)]
pub enum NetMsg {
    /// DatabaseStoreMessage.
    Store(DatabaseStore),
    /// DatabaseLookupMessage.
    Lookup(DatabaseLookup),
    /// DatabaseSearchReply.
    SearchReplyMsg(SearchReply),
    /// Tunnel build request travelling hop to hop.
    TunnelBuild {
        /// The per-hop encrypted records.
        request: TunnelBuildRequest,
        /// Who is building (reply address).
        originator: Hash256,
    },
    /// Build confirmation back to the originator.
    TunnelBuildReply {
        /// Which tunnel.
        tunnel_id: u32,
        /// Accepted or refused.
        ok: bool,
    },
    /// Data moving through a tunnel.
    TunnelData {
        /// Tunnel being traversed.
        tunnel_id: u32,
        /// Inter-tunnel delivery instruction for the outbound endpoint:
        /// `(inbound gateway, inbound tunnel id)`.
        deliver_to: Option<(Hash256, u32)>,
        /// The end-to-end sealed payload.
        garlic: GarlicMessage,
    },
    /// A garlic message delivered directly (no tunnel).
    Garlic(GarlicMessage),
    /// Introducer relay for firewalled peers (§5.1).
    RelayIntro {
        /// The firewalled peer to reach.
        target: Hash256,
        /// The message to forward.
        inner: Box<NetMsg>,
    },
    /// Transport-level failure signal delivered back to a sender whose
    /// connection was actively refused (the censor's
    /// [`i2p_transport::fabric::CensorMode::ActiveReset`] chokepoint).
    /// Null-routing never produces this — silence is the point.
    PeerUnreachable {
        /// The peer the connection attempt was refused towards.
        peer: Hash256,
    },
}

impl NetMsg {
    /// Approximate wire size for bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            NetMsg::Store(_) => 900,
            NetMsg::Lookup(_) => 200,
            NetMsg::SearchReplyMsg(r) => 200 + 900 * r.routers.len(),
            NetMsg::TunnelBuild { request, .. } => 300 * request.records.len(),
            NetMsg::TunnelBuildReply { .. } => 64,
            NetMsg::TunnelData { garlic, .. } => garlic.wire_len() + 64,
            NetMsg::Garlic(g) => g.wire_len(),
            NetMsg::RelayIntro { inner, .. } => inner.wire_size() + 64,
            // A local kernel signal (RST observed), not wire traffic.
            NetMsg::PeerUnreachable { .. } => 0,
        }
    }
}

/// One outbound message (target router by hash).
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Destination router.
    pub to: Hash256,
    /// The message.
    pub msg: NetMsg,
}

/// Application-level events surfaced to the experiment driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// An eepsite fetch completed.
    FetchCompleted {
        /// The request id.
        request_id: u64,
        /// Completion time.
        at: SimTime,
        /// Response body size.
        body_len: usize,
    },
    /// The eepsite served a request.
    Served {
        /// The request id.
        request_id: u64,
        /// Serve time.
        at: SimTime,
    },
    /// The eepsite had no outbound tunnel to answer through.
    ServeFailedNoTunnel {
        /// The request id.
        request_id: u64,
    },
}

/// An eepsite fetch request (clove payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EepRequest {
    /// Request id.
    pub request_id: u64,
    /// Path requested.
    pub path: String,
    /// Requester's inbound gateway.
    pub reply_gateway: Hash256,
    /// Requester's inbound tunnel id.
    pub reply_tunnel: u32,
    /// Key to seal the response to.
    pub reply_key: ElGamalPublic,
}

impl EepRequest {
    /// Serializes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = vec![1u8];
        v.extend_from_slice(&self.request_id.to_be_bytes());
        v.extend_from_slice(&self.reply_gateway.0);
        v.extend_from_slice(&self.reply_tunnel.to_be_bytes());
        v.extend_from_slice(&self.reply_key.0.to_be_bytes());
        v.extend_from_slice(self.path.as_bytes());
        v
    }

    /// Parses; `None` if this is not an EepRequest.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < 1 + 8 + 32 + 4 + 8 || b.first() != Some(&1) {
            return None;
        }
        Some(EepRequest {
            request_id: u64::from_be_bytes(b[1..9].try_into().ok()?),
            reply_gateway: Hash256(b[9..41].try_into().ok()?),
            reply_tunnel: u32::from_be_bytes(b[41..45].try_into().ok()?),
            reply_key: ElGamalPublic(u64::from_be_bytes(b[45..53].try_into().ok()?)),
            path: String::from_utf8(b[53..].to_vec()).ok()?,
        })
    }
}

/// An eepsite fetch response (clove payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EepResponse {
    /// Request id echoed back.
    pub request_id: u64,
    /// Page body.
    pub body: Vec<u8>,
}

impl EepResponse {
    /// Serializes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = vec![2u8];
        v.extend_from_slice(&self.request_id.to_be_bytes());
        v.extend_from_slice(&self.body);
        v
    }

    /// Parses; `None` if this is not an EepResponse.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < 9 || b.first() != Some(&2) {
            return None;
        }
        Some(EepResponse {
            request_id: u64::from_be_bytes(b[1..9].try_into().ok()?),
            body: b[9..].to_vec(),
        })
    }
}

#[derive(Clone, Debug)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    to: usize,
    msg: NetMsg,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The in-memory network.
///
/// `Clone` gives the scenario lab its substrate forks: a clone is a
/// fully independent network sharing nothing with the original, and —
/// because every map in the stack hashes deterministically — continuing
/// a clone is bit-identical to continuing the original. Use
/// [`TestNet::fork`] to also re-split the RNG so forks diverge
/// reproducibly.
#[derive(Clone)]
pub struct TestNet {
    /// The IP substrate (install a blocklist here to censor).
    pub fabric: Fabric,
    routers: Vec<Router>,
    index: FxHashMap<Hash256, usize>,
    /// Private endpoints for firewalled routers (reachable only via
    /// introducer relay in the model).
    private_endpoints: FxHashMap<usize, Endpoint>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: SimTime,
    seq: u64,
    next_ip: u32,
    rng: DetRng,
    /// Hardcoded reseed servers.
    pub reseeds: Vec<ReseedServer>,
}

impl TestNet {
    /// Creates an empty network.
    pub fn new(seed: u64) -> Self {
        TestNet {
            fabric: Fabric::new(),
            routers: Vec::new(),
            index: FxHashMap::default(),
            private_endpoints: FxHashMap::default(),
            queue: BinaryHeap::new(),
            now: SimTime::EPOCH,
            seq: 0,
            next_ip: 0x0100_0000,
            rng: DetRng::new(seed ^ 0x07e5_7ae7),
            reseeds: vec![ReseedServer::new(1), ReseedServer::new(2)],
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Whether the net is empty.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Immutable router access.
    pub fn router(&self, idx: usize) -> &Router {
        &self.routers[idx]
    }

    /// Mutable router access.
    pub fn router_mut(&mut self, idx: usize) -> &mut Router {
        &mut self.routers[idx]
    }

    /// Index of a router by hash.
    pub fn index_of(&self, hash: &Hash256) -> Option<usize> {
        self.index.get(hash).copied()
    }

    /// A fresh RNG stream for experiment drivers.
    pub fn fork_rng(&self, label: u64) -> DetRng {
        self.rng.fork(label)
    }

    /// Forks the network into an independent scenario: a deep clone
    /// whose root RNG is re-split by `label`, so every downstream
    /// stream (event handling, experiment drivers via [`TestNet::fork_rng`])
    /// diverges from the parent and from forks with other labels, while
    /// the same `label` always reproduces the same fork. Time, routers,
    /// queued events and the fabric are carried over unchanged — the
    /// scenario lab warms a substrate once and forks it per scenario
    /// instead of rebuilding and re-settling it.
    ///
    /// A plain `.clone()` keeps the parent's RNG stream: continuing a
    /// clone is bit-identical to continuing the original (the
    /// rebuild-equivalence the determinism suite pins down).
    pub fn fork(&self, label: u64) -> Self {
        let mut forked = self.clone();
        forked.rng = self.rng.fork(0xF02C ^ label);
        forked
    }

    /// Adds a router, assigning it an IP/port. Firewalled routers get a
    /// private endpoint plus introducers drawn from already-added public
    /// routers.
    pub fn add_router(&mut self, config: RouterConfig) -> usize {
        let mut rng = self.rng.fork(0x0add ^ self.routers.len() as u64);
        let mut router = Router::new(config, self.now, &mut rng);
        let idx = self.routers.len();
        let ip = PeerIp::V4(self.next_ip);
        self.next_ip += 1;
        let port = PORT_MIN + (rng.below((PORT_MAX - PORT_MIN) as u64 + 1) as u16);
        let ep = Endpoint { ip, port };
        match router.config.reachability {
            Reachability::Public => {
                router.set_network(Some(ip), port, Vec::new());
                self.fabric.register(ep, router.hash());
            }
            Reachability::Firewalled => {
                // Pick up to 3 public introducers.
                let intros: Vec<Introducer> = self
                    .routers
                    .iter()
                    .filter(|r| matches!(r.config.reachability, Reachability::Public))
                    .take(3)
                    .map(|r| Introducer {
                        router: r.hash(),
                        ip: r.public_ip.expect("public router has ip"), // i2plint: allow(panic-audit) -- Public reachability implies a published IP
                        tag: rng.next_u32(),
                    })
                    .collect();
                router.set_network(None, 0, intros);
                // Private endpoint: reachable by the harness only via
                // RelayIntro (hole punch established by the introducer).
                self.private_endpoints.insert(idx, ep);
                self.fabric.register(ep, router.hash());
            }
            Reachability::Hidden => {
                // No address at all; hidden peers only originate.
                self.private_endpoints.insert(idx, ep);
                self.fabric.register(ep, router.hash());
            }
        }
        self.index.insert(router.hash(), idx);
        self.routers.push(router);
        idx
    }

    /// The IP a router sources traffic from.
    pub fn source_ip(&self, idx: usize) -> PeerIp {
        match self.routers[idx].public_ip {
            Some(ip) => ip,
            None => self.private_endpoints[&idx].ip,
        }
    }

    /// The endpoint a router can be *delivered* to (public or private).
    fn delivery_endpoint(&self, idx: usize) -> Endpoint {
        match self.routers[idx].public_ip {
            Some(ip) => Endpoint { ip, port: self.routers[idx].port },
            None => self.private_endpoints[&idx],
        }
    }

    /// Loads every router's RouterInfo into the reseed servers.
    pub fn refresh_reseeds(&mut self) {
        let infos: Vec<_> = self
            .routers
            .iter()
            .map(|r| r.make_router_info(self.now))
            .collect();
        for s in &mut self.reseeds {
            s.set_known(infos.clone());
        }
    }

    /// Bootstraps `idx` from the reseed servers (≈150 RouterInfos, §4.2).
    /// Returns how many records were learned; 0 when all servers are
    /// blocked (the §6.1 scenario).
    pub fn bootstrap(&mut self, idx: usize) -> usize {
        let src = self.source_ip(idx);
        let mut learned = 0;
        let now = self.now;
        let answers: Vec<_> = self.reseeds.iter().filter_map(|s| s.answer(src)).collect();
        for answer in answers {
            for ri in answer {
                self.routers[idx].learn_router(ri, now);
                learned += 1;
            }
        }
        learned
    }

    /// Bootstraps from a manual reseed file instead (§6.1).
    pub fn bootstrap_from_file(&mut self, idx: usize, file: &crate::reseed::ReseedFile) -> usize {
        let now = self.now;
        for ri in &file.routers {
            self.routers[idx].learn_router(ri.clone(), now);
        }
        file.routers.len()
    }

    /// Sends `msg` from router `from_idx` toward the router with hash
    /// `to`; resolves the endpoint, passes the fabric (latency +
    /// censorship), and queues delivery. Returns whether the fabric
    /// accepted it.
    pub fn send(&mut self, from_idx: usize, to: Hash256, msg: NetMsg) -> bool {
        let Some(&to_idx) = self.index.get(&to) else {
            return false;
        };
        // Firewalled target and sender is not its introducer: relay via
        // an introducer (§5.1 hole punching), costing an extra hop.
        let target_fw = self.routers[to_idx].public_ip.is_none()
            && matches!(self.routers[to_idx].config.reachability, Reachability::Firewalled);
        let sender_hash = self.routers[from_idx].hash();
        if target_fw {
            let is_my_introducer = self.routers[to_idx]
                .my_introducers
                .iter()
                .any(|i| i.router == sender_hash);
            if !is_my_introducer {
                if let Some(intro) = self.routers[to_idx].my_introducers.first().copied() {
                    return self.send(
                        from_idx,
                        intro.router,
                        NetMsg::RelayIntro { target: to, inner: Box::new(msg) },
                    );
                }
                return false;
            }
        }
        let ep = self.delivery_endpoint(to_idx);
        let size = msg.wire_size();
        let src = self.source_ip(from_idx);
        match self.fabric.send(src, ep, size, self.now) {
            DeliveryOutcome::Delivered { at, .. } => {
                self.seq += 1;
                self.queue.push(Reverse(QueuedEvent { at, seq: self.seq, to: to_idx, msg }));
                true
            }
            DeliveryOutcome::Reset { at } => {
                // The censor refused the connection: the *sender* learns
                // about it after one chokepoint round trip and can fail
                // over immediately (vs. silently burning its timeout
                // under null routing).
                self.seq += 1;
                self.queue.push(Reverse(QueuedEvent {
                    at,
                    seq: self.seq,
                    to: from_idx,
                    msg: NetMsg::PeerUnreachable { peer: to },
                }));
                false
            }
            DeliveryOutcome::Duplicated { at, again, .. } => {
                // Fault-plane duplication: the destination handles the
                // message twice, exercising idempotence of the handlers.
                self.seq += 1;
                self.queue
                    .push(Reverse(QueuedEvent { at, seq: self.seq, to: to_idx, msg: msg.clone() }));
                self.seq += 1;
                self.queue.push(Reverse(QueuedEvent { at: again, seq: self.seq, to: to_idx, msg }));
                true
            }
            // Lost is the fault plane's silent drop; like null routing,
            // the sender gets no signal.
            DeliveryOutcome::NullRouted | DeliveryOutcome::NoListener | DeliveryOutcome::Lost => {
                false
            }
        }
    }

    /// Queues messages produced by a router.
    pub fn dispatch(&mut self, from_idx: usize, outbound: Vec<Outbound>) {
        for o in outbound {
            self.send(from_idx, o.to, o.msg);
        }
    }

    /// Runs the event loop until `deadline` (inclusive) or until the
    /// queue drains. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut processed = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(event) = self.queue.pop().unwrap(); // i2plint: allow(panic-audit) -- peek() above proved the queue non-empty
            self.now = event.at;
            let mut rng = self.rng.fork(0x11a9d ^ event.seq);
            let out = self.routers[event.to].handle(event.msg, self.now, &mut rng);
            self.dispatch(event.to, out);
            processed += 1;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Advances time without processing (when the queue is known empty).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Steps all routers' housekeeping at the current time.
    pub fn tick_all(&mut self) {
        let now = self.now;
        for r in &mut self.routers {
            r.tick(now);
        }
    }

    /// Convenience: run for a duration.
    pub fn run_for(&mut self, d: Duration) -> usize {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// Whether the delivery queue is empty.
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}
