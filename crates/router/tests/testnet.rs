//! End-to-end protocol tests on the in-memory network: bootstrap,
//! netDb publication + flooding, tunnel building, eepsite fetches, and
//! censorship behaviour.

use i2p_data::{Duration, Hash256, PeerIp, SimTime};
use i2p_router::config::{FloodfillMode, Reachability};
use i2p_router::{RouterConfig, TestNet};
use i2p_transport::BlockList;
use i2p_tunnel::pool::TunnelDirection;

fn public_cfg(kbps: u32, floodfill: bool) -> RouterConfig {
    RouterConfig {
        shared_kbps: kbps,
        floodfill: if floodfill { FloodfillMode::Manual } else { FloodfillMode::Disabled },
        reachability: Reachability::Public,
        country: 0,
        max_participating_tunnels: 1000,
        version: "0.9.34",
    }
}

/// Builds a small network: `n_ff` floodfills + `n_std` standard routers,
/// all bootstrapped and published.
fn build_net(seed: u64, n_ff: usize, n_std: usize) -> TestNet {
    let mut net = TestNet::new(seed);
    for _ in 0..n_ff {
        net.add_router(public_cfg(512, true));
    }
    for _ in 0..n_std {
        net.add_router(public_cfg(256, false));
    }
    net.refresh_reseeds();
    for i in 0..net.len() {
        net.bootstrap(i);
    }
    // Everyone publishes; floods propagate.
    for i in 0..net.len() {
        let now = net.now();
        let out = net.router_mut(i).publish_self(now);
        net.dispatch(i, out);
    }
    net.run_for(Duration::from_secs(30));
    net
}

#[test]
fn bootstrap_learns_about_150_routers() {
    let mut net = TestNet::new(1);
    for _ in 0..40 {
        net.add_router(public_cfg(128, false));
    }
    net.refresh_reseeds();
    let newcomer = net.add_router(public_cfg(30, false));
    let learned = net.bootstrap(newcomer);
    // 2 servers × min(75, 41 known) = 82 records offered.
    assert!(learned >= 80, "learned {learned}");
    assert!(net.router(newcomer).store.router_count() >= 40);
}

#[test]
fn reseed_blocking_stops_bootstrap_but_manual_file_works() {
    let mut net = build_net(2, 4, 10);
    // Censor blocks both reseed servers (§6.1).
    for s in &mut net.reseeds {
        s.blocked = true;
    }
    let newcomer = net.add_router(public_cfg(30, false));
    assert_eq!(net.bootstrap(newcomer), 0, "blocked reseeds give nothing");
    assert_eq!(net.router(newcomer).store.router_count(), 0);

    // A friendly established peer exports i2pseeds.su3 out of band.
    let file = net.router(0).export_reseed(net.now());
    let bytes = file.to_bytes();
    let parsed = i2p_router::ReseedFile::from_bytes(&bytes).unwrap();
    let n = net.bootstrap_from_file(newcomer, &parsed);
    assert!(n > 0);
    assert!(net.router(newcomer).store.router_count() > 0, "manual reseed restores access");
}

#[test]
fn publish_floods_to_other_floodfills() {
    let net = build_net(3, 6, 6);
    // Every floodfill should have learned a decent share of RouterInfos
    // via direct stores + flooding.
    for i in 0..6 {
        let count = net.router(i).store.router_count();
        assert!(count >= 6, "floodfill {i} knows only {count}");
    }
}

#[test]
fn tunnel_build_succeeds_and_pools_fill() {
    let mut net = build_net(4, 4, 12);
    let builder = 10usize;
    let mut rng = net.fork_rng(99);
    let now = net.now();
    let (msgs, id) = net
        .router_mut(builder)
        .start_tunnel_build(TunnelDirection::Outbound, 2, now, &mut rng)
        .expect("enough candidates");
    net.dispatch(builder, msgs);
    net.run_for(Duration::from_secs(10));
    assert!(!net.router(builder).build_pending(id), "reply must resolve the build");
    assert_eq!(net.router(builder).outbound.live_count(net.now()), 1);
    assert_eq!(net.router(builder).outbound.builds_succeeded, 1);
}

#[test]
fn inbound_tunnel_build_confirms_via_terminal_record() {
    let mut net = build_net(5, 4, 12);
    let builder = 8usize;
    let mut rng = net.fork_rng(7);
    let now = net.now();
    let (msgs, _id) = net
        .router_mut(builder)
        .start_tunnel_build(TunnelDirection::Inbound, 2, now, &mut rng)
        .unwrap();
    net.dispatch(builder, msgs);
    net.run_for(Duration::from_secs(10));
    assert_eq!(net.router(builder).inbound.live_count(net.now()), 1);
}

/// Full eepsite fetch through four tunnels (client out + server in for
/// the request; server out + client in for the response) — the Fig. 1
/// message flow.
#[test]
fn eepsite_fetch_end_to_end() {
    let mut net = build_net(6, 4, 16);
    let server = 12usize;
    let client = 13usize;
    net.router_mut(server).eepsite = Some(i2p_router::router::Eepsite {
        body: b"<html>eepsite</html>".to_vec(),
    });

    let mut rng = net.fork_rng(1);
    // Server tunnels + leaseset.
    for dir in [TunnelDirection::Inbound, TunnelDirection::Outbound] {
        let now = net.now();
        let (msgs, _) = net
            .router_mut(server)
            .start_tunnel_build(dir, 2, now, &mut rng)
            .unwrap();
        net.dispatch(server, msgs);
    }
    net.run_for(Duration::from_secs(10));
    let now = net.now();
    let out = net.router_mut(server).publish_leaseset(now);
    net.dispatch(server, out);
    net.run_for(Duration::from_secs(10));

    // Client tunnels.
    for dir in [TunnelDirection::Inbound, TunnelDirection::Outbound] {
        let now = net.now();
        let (msgs, _) = net
            .router_mut(client)
            .start_tunnel_build(dir, 2, now, &mut rng)
            .unwrap();
        net.dispatch(client, msgs);
    }
    net.run_for(Duration::from_secs(10));

    // Client needs the server's LeaseSet: direct DLM to a floodfill that
    // should hold it (closest to the key).
    let dest = net.router(server).hash();
    let targets = net.router(client).publish_targets(&dest, net.now());
    assert!(!targets.is_empty());
    let dlm = i2p_netdb::messages::DatabaseLookup {
        key: dest,
        from: net.router(client).hash(),
        kind: i2p_netdb::messages::LookupKind::LeaseSet,
        exclude: vec![],
        reply_via: None,
    };
    for t in targets {
        net.send(client, t, i2p_router::NetMsg::Lookup(dlm.clone()));
    }
    net.run_for(Duration::from_secs(10));
    assert!(
        net.router(client).store.lease_set(&dest).is_some(),
        "LeaseSet lookup must succeed"
    );

    // Fetch.
    let now = net.now();
    let (msgs, request_id) = net
        .router_mut(client)
        .start_fetch(&dest, now, &mut rng)
        .expect("fetch prerequisites met");
    let t0 = net.now();
    net.dispatch(client, msgs);
    net.run_for(Duration::from_secs(30));

    let events = &net.router(client).app_events;
    let done = events.iter().find_map(|e| match e {
        i2p_router::net::AppEvent::FetchCompleted { request_id: r, at, body_len }
            if *r == request_id =>
        {
            Some((*at, *body_len))
        }
        _ => None,
    });
    let (at, body_len) = done.expect("fetch must complete");
    assert_eq!(body_len, 20);
    let elapsed = at.since(t0);
    assert!(elapsed > Duration::ZERO && elapsed < Duration::from_secs(10), "load time {elapsed:?}");
}

#[test]
fn firewalled_peer_reachable_via_introducer() {
    let mut net = TestNet::new(8);
    for _ in 0..6 {
        net.add_router(public_cfg(512, true));
    }
    let fw = net.add_router(RouterConfig {
        reachability: Reachability::Firewalled,
        ..public_cfg(128, false)
    });
    net.refresh_reseeds();
    for i in 0..net.len() {
        net.bootstrap(i);
    }
    assert!(!net.router(fw).my_introducers.is_empty(), "firewalled peer got introducers");
    // The firewalled peer's RouterInfo has no IP but lists introducers.
    let ri = net.router(fw).make_router_info(net.now());
    assert!(ri.is_firewalled());
    assert!(!ri.is_hidden());
    // A floodfill can still deliver to it (via RelayIntro).
    let fw_hash = net.router(fw).hash();
    let ok = net.send(
        0,
        fw_hash,
        i2p_router::NetMsg::Lookup(i2p_netdb::messages::DatabaseLookup {
            key: Hash256::digest(b"whatever"),
            from: net.router(0).hash(),
            kind: i2p_netdb::messages::LookupKind::Exploratory,
            exclude: vec![],
            reply_via: None,
        }),
    );
    assert!(ok, "introducer relay path works");
    let processed = net.run_for(Duration::from_secs(5));
    assert!(processed >= 2, "relay + delivery events, got {processed}");
}

#[test]
fn hidden_peer_publishes_no_address() {
    let mut net = TestNet::new(9);
    net.add_router(public_cfg(512, true));
    let hidden = net.add_router(RouterConfig {
        reachability: Reachability::Hidden,
        ..public_cfg(128, false)
    });
    let ri = net.router(hidden).make_router_info(net.now());
    assert!(ri.is_hidden());
    assert!(ri.addresses.is_empty());
    assert!(!ri.caps.reachable);
}

#[test]
fn blocked_destination_times_out_silently() {
    let mut net = build_net(10, 4, 8);
    let victim = net.add_router(public_cfg(128, false));
    net.refresh_reseeds();
    net.bootstrap(victim);
    let victim_ip = net.source_ip(victim);

    // Censor blocks router 0's IP, scoped to the victim's uplink.
    let target_ip = net.source_ip(0);
    let mut bl = BlockList::new(30);
    bl.observe(target_ip, 0);
    net.fabric.set_blocklist(bl);
    net.fabric.set_victim(victim_ip);

    let target_hash = net.router(0).hash();
    let ok = net.send(
        victim,
        target_hash,
        i2p_router::NetMsg::Lookup(i2p_netdb::messages::DatabaseLookup {
            key: Hash256::digest(b"x"),
            from: net.router(victim).hash(),
            kind: i2p_netdb::messages::LookupKind::Exploratory,
            exclude: vec![],
            reply_via: None,
        }),
    );
    assert!(!ok, "null-routed");
    // Other routers still talk to router 0 (the censor sits only at the
    // victim's upstream).
    let ok2 = net.send(
        3,
        target_hash,
        i2p_router::NetMsg::Lookup(i2p_netdb::messages::DatabaseLookup {
            key: Hash256::digest(b"y"),
            from: net.router(3).hash(),
            kind: i2p_netdb::messages::LookupKind::Exploratory,
            exclude: vec![],
            reply_via: None,
        }),
    );
    assert!(ok2, "non-victim traffic unaffected");
}

#[test]
fn auto_floodfill_opt_in_requires_uptime_and_bandwidth() {
    let mut net = TestNet::new(11);
    let auto = net.add_router(RouterConfig {
        floodfill: FloodfillMode::Auto,
        ..public_cfg(512, false)
    });
    let weak = net.add_router(RouterConfig {
        floodfill: FloodfillMode::Auto,
        ..public_cfg(64, false)
    });
    let t0 = net.now();
    assert!(!net.router(auto).is_floodfill(t0), "no uptime yet");
    let later = t0 + Duration::from_hours(3);
    assert!(net.router(auto).is_floodfill(later), "health checks passed");
    assert!(!net.router(weak).is_floodfill(later), "64 KB/s below the 128 KB/s minimum");
    // Manual mode ignores health checks — the §5.3.1 unqualified
    // floodfills.
    let manual_weak = net.add_router(RouterConfig {
        floodfill: FloodfillMode::Manual,
        ..public_cfg(30, false)
    });
    assert!(net.router(manual_weak).is_floodfill(t0));
    let caps = net.router(manual_weak).current_caps(t0);
    assert!(caps.floodfill && !caps.qualified_floodfill());
}

#[test]
fn deterministic_across_runs() {
    let a = build_net(42, 4, 8);
    let b = build_net(42, 4, 8);
    for i in 0..a.len() {
        assert_eq!(a.router(i).hash(), b.router(i).hash());
        assert_eq!(a.router(i).store.router_count(), b.router(i).store.router_count());
    }
    assert_eq!(a.now(), b.now());
}

#[test]
fn victim_source_ip_consistency() {
    let mut net = TestNet::new(13);
    let r = net.add_router(public_cfg(128, false));
    let ip = net.source_ip(r);
    assert!(matches!(ip, PeerIp::V4(_)));
    assert_eq!(net.router(r).public_ip, Some(ip));
    assert_eq!(net.now(), SimTime::EPOCH);
}
