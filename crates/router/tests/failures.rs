//! Failure-injection tests: what happens when builds time out, peers
//! are over capacity, garlic is misdelivered, or the censor sits on the
//! wire mid-operation.

use i2p_data::{Duration, Hash256};
use i2p_router::config::{FloodfillMode, Reachability};
use i2p_router::{RouterConfig, TestNet};
use i2p_transport::BlockList;
use i2p_tunnel::pool::TunnelDirection;

fn cfg(kbps: u32, ff: bool) -> RouterConfig {
    RouterConfig {
        shared_kbps: kbps,
        floodfill: if ff { FloodfillMode::Manual } else { FloodfillMode::Disabled },
        reachability: Reachability::Public,
        country: 0,
        max_participating_tunnels: 1000,
        version: "0.9.34",
    }
}

fn boot(seed: u64, n: usize) -> TestNet {
    let mut net = TestNet::new(seed);
    for i in 0..n {
        net.add_router(cfg(512, i < 4));
    }
    net.refresh_reseeds();
    for i in 0..net.len() {
        net.bootstrap(i);
    }
    for i in 0..net.len() {
        let now = net.now();
        let out = net.router_mut(i).publish_self(now);
        net.dispatch(i, out);
    }
    net.run_for(Duration::from_secs(20));
    net
}

#[test]
fn build_timeout_penalises_hops_and_retries_avoid_them() {
    let mut net = boot(1, 14);
    let victim = net.add_router(cfg(128, false));
    net.refresh_reseeds();
    net.bootstrap(victim);
    let victim_ip = net.source_ip(victim);

    // Block everything: every build must fail.
    let mut bl = BlockList::new(3650);
    for i in 0..14 {
        bl.observe(net.source_ip(i), 0);
    }
    net.fabric.set_blocklist(bl);
    net.fabric.set_victim(victim_ip);

    let mut rng = net.fork_rng(9);
    let now = net.now();
    let (msgs, id) = net
        .router_mut(victim)
        .start_tunnel_build(TunnelDirection::Outbound, 2, now, &mut rng)
        .unwrap();
    net.dispatch(victim, msgs);
    net.run_for(Duration::from_secs(10));
    assert!(net.router(victim).build_pending(id), "blocked build cannot complete");
    let now = net.now();
    net.router_mut(victim).fail_pending_build(id, now);
    assert!(!net.router(victim).build_pending(id));
    assert_eq!(net.router(victim).outbound.live_count(net.now()), 0);
    assert_eq!(net.router(victim).outbound.builds_attempted, 1);
    assert_eq!(net.router(victim).outbound.builds_succeeded, 0);

    // The failed hops took a profile hit (judged at the current time —
    // recent failure streaks gate selection; they decay after 10 min).
    let t_check = net.now();
    let weights_sum: u32 = net
        .router(victim)
        .hop_candidates_at(t_check)
        .iter()
        .map(|c| c.weight)
        .sum();
    // After 3 failures a peer would be excluded entirely; after one,
    // weights merely shrink. Run two more failing builds and check the
    // candidate pool collapses.
    for _ in 0..8 {
        let now = net.now();
        let mut rng2 = net.fork_rng(now.as_millis());
        if let Some((msgs, id2)) = net.router_mut(victim).start_tunnel_build(
            TunnelDirection::Outbound,
            2,
            now,
            &mut rng2,
        ) {
            net.dispatch(victim, msgs);
            net.run_for(Duration::from_secs(10));
            let now = net.now();
            net.router_mut(victim).fail_pending_build(id2, now);
        } else {
            break;
        }
    }
    let t_after = net.now();
    let weights_after: u32 = net
        .router(victim)
        .hop_candidates_at(t_after)
        .iter()
        .map(|c| c.weight)
        .sum();
    assert!(
        weights_after < weights_sum,
        "repeated failures must reduce candidate weights ({weights_sum} -> {weights_after})"
    );
    // And once the failure streaks age out, the peers are forgiven.
    let far_future = t_after + Duration::from_mins(30);
    let weights_recovered: u32 = net
        .router(victim)
        .hop_candidates_at(far_future)
        .iter()
        .map(|c| c.weight)
        .sum();
    assert!(
        weights_recovered > weights_after,
        "failure streaks must decay ({weights_after} -> {weights_recovered})"
    );
}

#[test]
fn over_capacity_router_refuses_builds() {
    let mut net = TestNet::new(2);
    // One relay with zero tunnel capacity plus a builder and a helper.
    let zero = net.add_router(RouterConfig {
        max_participating_tunnels: 0,
        ..cfg(8192, false)
    });
    let helper = net.add_router(cfg(8192, false));
    let builder = net.add_router(cfg(512, false));
    net.refresh_reseeds();
    for i in 0..net.len() {
        net.bootstrap(i);
    }
    let _ = (zero, helper);
    let mut rng = net.fork_rng(3);
    let now = net.now();
    // 2-hop build must pick both relays; the zero-capacity one refuses.
    let (msgs, id) = net
        .router_mut(builder)
        .start_tunnel_build(TunnelDirection::Outbound, 2, now, &mut rng)
        .unwrap();
    net.dispatch(builder, msgs);
    net.run_for(Duration::from_secs(10));
    // Build resolved (either refused -> failure recorded, or it never
    // reached the refuser first — but with 2 candidates both are used).
    assert!(!net.router(builder).build_pending(id));
    assert_eq!(
        net.router(builder).outbound.builds_succeeded,
        0,
        "a refusing hop must fail the build"
    );
}

#[test]
fn garlic_to_wrong_router_is_dropped_silently() {
    let mut net = boot(3, 8);
    let mut rng = net.fork_rng(5);
    // Seal a garlic for router 1 but deliver it to router 2.
    let key_of_1 = net.router(1).identity.enc_key;
    let garlic = i2p_tunnel::garlic::GarlicMessage::seal(
        &[i2p_tunnel::garlic::Clove {
            instructions: i2p_tunnel::garlic::DeliveryInstructions::Local,
            payload: b"misdelivered".to_vec(),
        }],
        key_of_1,
        &mut rng,
    );
    let two = net.router(2).hash();
    assert!(net.send(0, two, i2p_router::NetMsg::Garlic(garlic)));
    let processed = net.run_for(Duration::from_secs(5));
    assert!(processed >= 1);
    assert!(net.router(2).app_events.is_empty(), "router 2 cannot open it");
    assert!(net.router(1).app_events.is_empty(), "router 1 never got it");
}

#[test]
fn unknown_tunnel_data_does_not_crash_or_leak() {
    let mut net = boot(4, 8);
    let mut rng = net.fork_rng(6);
    let garlic = i2p_tunnel::garlic::GarlicMessage::seal(
        &[],
        net.router(3).identity.enc_key,
        &mut rng,
    );
    let three = net.router(3).hash();
    let ok = net.send(
        0,
        three,
        i2p_router::NetMsg::TunnelData { tunnel_id: 0xDEAD_BEEF, deliver_to: None, garlic },
    );
    assert!(ok);
    net.run_for(Duration::from_secs(5));
    // Router 3 treats it as a garlic addressed to itself (it is), and
    // opens an empty clove set: no events, no panic.
    assert!(net.router(3).app_events.is_empty());
}

#[test]
fn expired_participation_forwards_nothing() {
    let mut net = boot(5, 10);
    let builder = 6usize;
    let mut rng = net.fork_rng(7);
    let now = net.now();
    let (msgs, id) = net
        .router_mut(builder)
        .start_tunnel_build(TunnelDirection::Outbound, 2, now, &mut rng)
        .unwrap();
    net.dispatch(builder, msgs);
    net.run_for(Duration::from_secs(10));
    assert_eq!(net.router(builder).outbound.live_count(net.now()), 1);

    // Advance 11 minutes: tunnel + participations expire.
    net.advance_to(net.now() + Duration::from_mins(11));
    net.tick_all();
    assert_eq!(net.router(builder).outbound.live_count(net.now()), 0);
    for i in 0..net.len() {
        assert!(
            !net.router(i).participating.contains_key(&id),
            "router {i} still holds expired participation"
        );
    }
}

#[test]
fn hidden_routers_are_never_hop_candidates() {
    let mut net = boot(6, 10);
    let hidden = net.add_router(RouterConfig {
        reachability: Reachability::Hidden,
        ..cfg(8192, false)
    });
    net.refresh_reseeds();
    // Everyone re-bootstraps and so learns the hidden router's RI.
    for i in 0..net.len() {
        net.bootstrap(i);
    }
    let hidden_hash = net.router(hidden).hash();
    for i in 0..net.len() - 1 {
        let cands = net.router(i).hop_candidates();
        assert!(
            cands.iter().all(|c| c.hash != hidden_hash),
            "router {i} offered the hidden router as a hop"
        );
    }
}

#[test]
fn reply_from_blocked_peer_is_dropped() {
    // The victim can *send* to an unblocked floodfill, but if the censor
    // later blocks that floodfill, its replies die at the chokepoint.
    let mut net = boot(7, 10);
    let victim = net.add_router(cfg(128, false));
    net.refresh_reseeds();
    net.bootstrap(victim);
    let victim_ip = net.source_ip(victim);
    let ff_ip = net.source_ip(0);
    let ff_hash = net.router(0).hash();

    // Lookup goes out while the peer is unblocked…
    let ok = net.send(
        victim,
        ff_hash,
        i2p_router::NetMsg::Lookup(i2p_netdb::messages::DatabaseLookup {
            key: Hash256::digest(b"k"),
            from: net.router(victim).hash(),
            kind: i2p_netdb::messages::LookupKind::Exploratory,
            exclude: vec![],
            reply_via: None,
        }),
    );
    assert!(ok);
    // …but the block lands before the reply is sent.
    let mut bl = BlockList::new(3650);
    bl.observe(ff_ip, 0);
    net.fabric.set_blocklist(bl);
    net.fabric.set_victim(victim_ip);
    let before = net.router(victim).store.router_count();
    net.run_for(Duration::from_secs(10));
    let after = net.router(victim).store.router_count();
    assert_eq!(before, after, "the SearchReply was null-routed");
}
