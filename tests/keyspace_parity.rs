//! Differential parity of the keyspace-routed harvest.
//!
//! The keyspace visibility model (DESIGN.md §8) must be a *refinement*
//! of the uniform oracle, not a divergence from it:
//!
//! * with **full-overlap** placement (replication ≥ the floodfill
//!   population) every floodfill receives every store, so the
//!   keyspace-routed engine must reproduce the uniform-visibility
//!   engine **bit-identically** — same counts, same sighting sets, same
//!   rendered figures;
//! * with the paper's **non-degenerate** placement (replication = 3)
//!   floodfill vantages keep only their keyspace slice, so coverage
//!   must land inside a pinned envelope: strictly below uniform for the
//!   floodfill lanes, untouched for the non-floodfill lanes.

use i2pscope::cli::{self, FigId, Format};
use i2pscope::measure::fleet::{Fleet, VantageMode};
use i2pscope::measure::keyspace::{KeyspaceConfig, VisibilityModel};
use i2pscope::measure::HarvestEngine;
use i2pscope::sim::world::{World, WorldConfig};

fn setup() -> (World, Fleet) {
    (
        World::generate(WorldConfig { days: 6, scale: 0.03, seed: 20_180_201 }),
        Fleet::alternating(8),
    )
}

#[test]
fn full_overlap_is_bit_identical_to_the_uniform_oracle() {
    let (world, fleet) = setup();
    let uniform = HarvestEngine::build(&world, &fleet, 0..6);
    let keyed = HarvestEngine::build_with(
        &world,
        &fleet,
        0..6,
        &VisibilityModel::Keyspace(KeyspaceConfig::full_overlap()),
    );
    for day in 0..6 {
        for v in 0..8 {
            assert_eq!(keyed.count_one(v, day), uniform.count_one(v, day), "day {day} v {v}");
            assert_eq!(keyed.vantage_ids(v, day), uniform.vantage_ids(v, day), "day {day} v {v}");
        }
        for k in 1..=8 {
            assert_eq!(
                keyed.count_union_prefix(day, k),
                uniform.count_union_prefix(day, k),
                "day {day} k {k}"
            );
        }
        assert_eq!(keyed.coverage_curve(day), uniform.coverage_curve(day), "day {day}");
    }
    // And through the figure pipelines: byte-identical renders.
    for format in [Format::Text, Format::Csv] {
        assert_eq!(
            cli::render_figures(&keyed, format, &FigId::ALL),
            cli::render_figures(&uniform, format, &FigId::ALL),
            "{format:?} figures diverged under full overlap"
        );
    }
}

#[test]
fn replication_above_population_is_the_same_degenerate_case() {
    // A finite replication factor at or above the placement population
    // behaves exactly like the usize::MAX sentinel.
    let (world, fleet) = setup();
    let uniform = HarvestEngine::build(&world, &fleet, 2..4);
    let big = KeyspaceConfig { replication: 100_000, ..KeyspaceConfig::full_overlap() };
    let keyed = HarvestEngine::build_with(&world, &fleet, 2..4, &VisibilityModel::Keyspace(big));
    for day in 2..4 {
        for v in 0..8 {
            assert_eq!(keyed.vantage_ids(v, day), uniform.vantage_ids(v, day));
        }
    }
}

#[test]
fn paper_placement_stays_inside_the_coverage_envelope() {
    let (world, fleet) = setup();
    let uniform = HarvestEngine::build(&world, &fleet, 0..6);
    let keyed = HarvestEngine::build_with(
        &world,
        &fleet,
        0..6,
        &VisibilityModel::Keyspace(KeyspaceConfig::paper()),
    );
    for day in 0..6 {
        let online = world.online_count(day) as f64;
        let floodfills = world.online_floodfill_count(day);
        for (v, vantage) in fleet.vantages.iter().enumerate() {
            let uni = uniform.count_one(v, day);
            let key = keyed.count_one(v, day);
            match vantage.mode {
                // Non-floodfill sightings are keyspace-independent:
                // exactly the oracle's, bit for bit.
                VantageMode::NonFloodfill => {
                    assert_eq!(key, uni, "day {day} v {v}");
                    assert_eq!(keyed.vantage_ids(v, day), uniform.vantage_ids(v, day));
                }
                // A floodfill vantage keeps at most its keyspace slice:
                // ~replication/F of the records, never more than the
                // uniform draw it is ANDed into. Envelope pinned to
                // [slice/8, 4·slice + 16] sightings — loose enough for
                // draw noise, tight enough to catch a broken gate (an
                // all-ones gate would land at ~uniform ≈ F/3 × slice).
                VantageMode::Floodfill => {
                    assert!(key <= uni, "day {day} v {v}: {key} > uniform {uni}");
                    let slice = 3.0 / (floodfills + 4) as f64 * online;
                    assert!(
                        (key as f64) <= slice * 4.0 + 16.0,
                        "day {day} v {v}: {key} above envelope (slice ≈ {slice:.0})"
                    );
                    assert!(
                        (key as f64) >= slice / 8.0,
                        "day {day} v {v}: {key} below envelope (slice ≈ {slice:.0})"
                    );
                }
            }
        }
        // The union still carries the census: non-floodfill lanes are
        // untouched, so fleet coverage cannot collapse — it is pinned
        // to at least 70% of the uniform union (measured ≈79% at this
        // seed/scale; a broken gate that zeroed whole lanes would land
        // far below, an open gate exactly at 100%).
        let uni_union = uniform.count_union(day) as f64;
        let key_union = keyed.count_union(day) as f64;
        assert!(key_union <= uni_union);
        assert!(
            key_union >= 0.70 * uni_union,
            "day {day}: keyspace union {key_union} fell below 70% of uniform {uni_union}"
        );
        assert!(
            key_union < uni_union,
            "day {day}: non-degenerate placement cannot reproduce the full union"
        );
    }
}

#[test]
fn keyspace_fill_is_thread_count_independent() {
    // The gate pass runs through lab::sweep; like the base fill it must
    // be bit-identical no matter how the days are scheduled. Pin by
    // comparing two independently built engines (each internally
    // parallel) and the single-day incremental build.
    let (world, fleet) = setup();
    let model = VisibilityModel::Keyspace(KeyspaceConfig::paper());
    let a = HarvestEngine::build_with(&world, &fleet, 0..6, &model);
    let b = HarvestEngine::build_with(&world, &fleet, 0..6, &model);
    for day in 0..6 {
        let single = HarvestEngine::build_with(&world, &fleet, day..day + 1, &model);
        for v in 0..8 {
            assert_eq!(a.vantage_ids(v, day), b.vantage_ids(v, day));
            assert_eq!(a.vantage_ids(v, day), single.vantage_ids(v, day), "day {day} v {v}");
        }
    }
}
