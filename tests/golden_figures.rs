//! Golden-figure regression net.
//!
//! Every figure renderer in `i2p_measure::report` — text layout and
//! CSV twin — is pinned at a fixed seed/scale against checked-in golden
//! files under `tests/golden/`, so a refactor of the engine, the
//! analyses, or the renderers cannot silently drift the numbers: any
//! byte change fails here with the first diverging line.
//!
//! When a change is *intentional*, regenerate the goldens and commit
//! them alongside it:
//!
//! ```text
//! I2PSCOPE_BLESS=1 cargo test --test golden_figures
//! ```
//!
//! Everything below is deterministic by construction (seeded worlds,
//! thread-count-independent engine fills and lab sweeps), which is what
//! makes byte-level pinning possible at all.

use i2pscope::cli::{self, FigId, Format, Knobs, Model};
use i2pscope::faults::FaultSpec;
use i2pscope::measure::adversary::{parse_spec, AdversaryLab};
use i2pscope::measure::censor::blocking_matrix;
use i2pscope::measure::fleet::Fleet;
use i2pscope::measure::sybil::{self, SybilConfig};
use i2pscope::measure::usability::{evaluate, UsabilityConfig};
use i2pscope::measure::{population, report};
use i2pscope::sim::world::{World, WorldConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The pinned scale/seed: small enough to run in seconds, large enough
/// that every renderer produces non-trivial rows.
const SCALE: f64 = 0.02;
const SEED: u64 = 20_180_201;
const DAYS: u64 = 12;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the checked-in golden, or regenerates it
/// under `I2PSCOPE_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("I2PSCOPE_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {name}; generate it with \
             `I2PSCOPE_BLESS=1 cargo test --test golden_figures` and commit it"
        )
    });
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "golden {name} drifted at line {} — if intentional, re-bless with \
             I2PSCOPE_BLESS=1 and commit the new golden",
            i + 1
        );
    }
    panic!(
        "golden {name} drifted in length ({} actual vs {} golden lines) — if intentional, \
         re-bless with I2PSCOPE_BLESS=1 and commit the new golden",
        actual.lines().count(),
        expected.lines().count()
    );
}

fn knobs(model: Model) -> Knobs {
    Knobs {
        scale: SCALE,
        seed: SEED,
        days: DAYS,
        fleet: 6,
        replicates: 1,
        threads: 1,
        model,
        faults: FaultSpec::default(),
    }
}

fn world() -> World {
    World::generate(WorldConfig { days: DAYS, scale: SCALE, seed: SEED })
}

#[test]
fn golden_main_figure_suite_uniform() {
    // Figures 4–12 + Table 1 through the CLI pipeline (what `i2pscope
    // figures --live` prints), under the uniform oracle.
    let k = knobs(Model::Uniform);
    check_golden("figures_uniform.txt", &cli::figures_live(&k, Format::Text, &FigId::ALL));
    check_golden("figures_uniform.csv", &cli::figures_live(&k, Format::Csv, &FigId::ALL));
}

#[test]
fn golden_main_figure_suite_keyspace() {
    // The same pipeline under keyspace-routed placement: pinning both
    // models keeps the oracle-mode switch itself under regression.
    let k = knobs(Model::Keyspace);
    check_golden("figures_keyspace.txt", &cli::figures_live(&k, Format::Text, &FigId::ALL));
    check_golden("figures_keyspace.csv", &cli::figures_live(&k, Format::Csv, &FigId::ALL));
}

#[test]
fn golden_extended_renderers() {
    // Every renderer outside the FigId pipeline: Fig. 2, Fig. 3,
    // Fig. 13, Fig. 14 and the Sybil sweep, text + CSV.
    let world = world();
    let fleet = Fleet::alternating(6);

    let fig2 = population::single_router_experiment(&world, 0x601);
    let fig3 = population::bandwidth_sweep(&world, 2..5);
    let fig13 = blocking_matrix(&world, &fleet, 8, &[1, 3, 6], &[1, 3]);
    let fig14 = evaluate(&UsabilityConfig {
        relays: 24,
        floodfills: 6,
        fetches_per_rate: 3,
        blocking_rates: vec![0.0, 0.65, 0.97],
        replicates: 1,
        threads: 1,
        seed: SEED,
        ..Default::default()
    });
    let sybil = sybil::run(
        &world,
        &fleet,
        &SybilConfig { counts: vec![0, 2, 8], threads: 1, ..SybilConfig::paper(2..6) },
    );

    let mut text = String::new();
    let mut csv = String::new();
    let _ = write!(text, "{}", report::render_fig2(&fig2));
    let _ = write!(text, "{}", report::render_fig3(&fig3));
    let _ = write!(text, "{}", report::render_fig13(&fig13));
    let _ = write!(text, "{}", report::render_fig14(&fig14));
    let _ = write!(text, "{}", report::render_sybil(&sybil));
    let _ = write!(csv, "{}", report::csv_fig2(&fig2));
    let _ = write!(csv, "{}", report::csv_fig3(&fig3));
    let _ = write!(csv, "{}", report::csv_fig13(&fig13));
    let _ = write!(csv, "{}", report::csv_fig14(&fig14));
    let _ = write!(csv, "{}", report::csv_sybil(&sybil));
    check_golden("extended.txt", &text);
    check_golden("extended.csv", &csv);
}

#[test]
fn golden_faulted_scenario() {
    // One pinned chaos scenario: vantage outages plus message loss at a
    // fixed seed. Pins both the degraded-figure annotation (coverage
    // header) and the audit line, text + CSV, so fault-plane or
    // renderer drift under injected faults is caught at the byte level.
    let mut k = knobs(Model::Uniform);
    k.faults = "outage=0.3,loss=0.02".parse().expect("valid fault spec");
    check_golden("figures_faulted.txt", &cli::figures_live_audited(&k, Format::Text, &FigId::ALL));
    check_golden("figures_faulted.csv", &cli::figures_live_audited(&k, Format::Csv, &FigId::ALL));
}

#[test]
fn golden_adversary_composed() {
    // The three composed scenarios the paper never ran, pinned through
    // the unified adversary engine: escalation tables plus the audit
    // trail every registered run emits.
    let world = world();
    let fleet = Fleet::alternating(6);
    let lab = AdversaryLab::new(&world, &fleet, 0..DAYS, 1);
    let mut text = String::new();
    let mut csv = String::new();
    for spec in ["sybil+censor", "adaptive", "geo"] {
        let outcome = parse_spec(spec).expect("registered composed scenario").run(&lab);
        let _ = write!(text, "{}{}\n\n", outcome.figure, outcome.audit_line());
        let _ = write!(csv, "{}", outcome.csv);
    }
    check_golden("adversary_composed.txt", &text);
    check_golden("adversary_composed.csv", &csv);
}
