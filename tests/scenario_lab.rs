//! Scenario-lab determinism suite (DESIGN.md §6).
//!
//! The lab's whole value proposition is that forking a warmed substrate
//! is *free of measurement drift*: (a) a single-threaded forked sweep is
//! bit-identical to the rebuild-from-scratch oracle ([`run_one_rate`],
//! which still bootstraps, reseeds and settles a whole network per
//! rate), and (b) sweep results are identical at 1 vs N threads. Any
//! divergence means the lab changed the experiment, not just its cost —
//! the same contract `crates/measure/tests/parity.rs` pins for the
//! harvest engine. (The fetch loop itself gained two intentional
//! semantic changes in the same PR — per-fetch tunnel rotation and
//! fail-fast build resolution — shared by the oracle and the forked
//! path alike, so this suite pins fork ≡ rebuild, not equivalence to
//! earlier releases' raw numbers.)

use i2pscope::measure::adversary::{registry, run_chain, AdversaryLab, ChainKnobs};
use i2pscope::measure::usability::{
    evaluate, run_one_rate, run_scenario, warm_substrate, UsabilityConfig,
};
use i2pscope::measure::Fleet;
use i2pscope::sim::world::{World, WorldConfig};
use i2pscope::transport::CensorMode;

fn small_cfg() -> UsabilityConfig {
    UsabilityConfig {
        relays: 28,
        floodfills: 6,
        fetches_per_rate: 3,
        blocking_rates: vec![0.0, 0.75],
        threads: 1,
        ..Default::default()
    }
}

#[test]
fn forked_sweep_is_bit_identical_to_rebuild_path() {
    let cfg = small_cfg();
    let forked = evaluate(&cfg);
    assert_eq!(forked.len(), cfg.blocking_rates.len());
    for (point, &rate) in forked.iter().zip(&cfg.blocking_rates) {
        let oracle = run_one_rate(&cfg, rate, cfg.seed);
        // Exact f64 equality: the fork must replay the rebuild path
        // bit for bit, not merely approximate it.
        assert_eq!(point.fetches, oracle.fetches, "rate {rate}");
        assert_eq!(point.avg_load_time_s, oracle.avg_load_time_s, "rate {rate}");
        assert_eq!(point.timeout_pct, oracle.timeout_pct, "rate {rate}");
        assert_eq!(point.load_ci95_s, oracle.load_ci95_s, "rate {rate}");
    }
}

#[test]
fn sweep_results_identical_across_thread_counts() {
    let mut cfg = small_cfg();
    cfg.replicates = 2;
    cfg.threads = 1;
    let serial = evaluate(&cfg);
    for threads in [2, 5] {
        cfg.threads = threads;
        let parallel = evaluate(&cfg);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.fetches, b.fetches, "threads {threads}");
            assert_eq!(a.avg_load_time_s, b.avg_load_time_s, "threads {threads}");
            assert_eq!(a.timeout_pct, b.timeout_pct, "threads {threads}");
        }
    }
}

#[test]
fn replicates_are_independent_but_reproducible() {
    let cfg = small_cfg();
    let sub = warm_substrate(&cfg);
    let rep0 = run_scenario(&sub, &cfg, 0.75, 0);
    let rep1 = run_scenario(&sub, &cfg, 0.75, 1);
    let rep1_again = run_scenario(&sub, &cfg, 0.75, 1);
    // Same fork label ⇒ same run, bit for bit.
    assert_eq!(rep1.fetches, rep1_again.fetches);
    // Different labels ⇒ an independent censor sample / fetch stream.
    assert_ne!(
        rep0.fetches, rep1.fetches,
        "replicate 1 must diverge from replicate 0 at a partial blocking rate"
    );
}

#[test]
fn active_reset_censor_changes_the_latency_curve() {
    let mut cfg = small_cfg();
    cfg.blocking_rates = vec![0.75];
    let sub = warm_substrate(&cfg);
    let silent = run_scenario(&sub, &cfg, 0.75, 0);
    cfg.censor_mode = CensorMode::ActiveReset;
    let reset = run_scenario(&sub, &cfg, 0.75, 0);
    // A null-routed build burns the 10 s attempt timeout in silence; an
    // RST fails it in one chokepoint round trip, so under the same
    // blocked set the victim recovers sooner: no worse timeout share and
    // strictly faster successful page loads.
    assert!(
        reset.timeout_pct <= silent.timeout_pct,
        "fail-fast cannot time out more: reset {}% vs silent {}%",
        reset.timeout_pct,
        silent.timeout_pct
    );
    assert!(
        reset.avg_load_time_s < silent.avg_load_time_s,
        "RST must beat silent drops on load time: reset {:.2}s vs silent {:.2}s",
        reset.avg_load_time_s,
        silent.avg_load_time_s
    );
}

#[test]
fn zero_blocking_is_identical_under_both_censor_modes() {
    let mut cfg = small_cfg();
    cfg.blocking_rates = vec![0.0];
    let sub = warm_substrate(&cfg);
    let silent = run_scenario(&sub, &cfg, 0.0, 0);
    cfg.censor_mode = CensorMode::ActiveReset;
    let reset = run_scenario(&sub, &cfg, 0.0, 0);
    // With an empty blocked set the chokepoint never acts; the censor
    // mode must be unobservable.
    assert_eq!(silent.fetches, reset.fetches);
}

#[test]
fn composed_chain_day_loop_is_deterministic() {
    // The adversary chains run through the same lab::sweep machinery;
    // their day-loop core must replay bit for bit on a rerun.
    let world = World::generate(WorldConfig { days: 6, scale: 0.02, seed: 23 });
    let fleet = Fleet::alternating(4);
    let lab = AdversaryLab::new(&world, &fleet, 0..6, 1);
    let members = vec![
        registry::leaf("sybil").expect("leaf"),
        registry::leaf("censor").expect("leaf"),
    ];
    let knobs = ChainKnobs { sybil_count: 4, ..Default::default() };
    let first = run_chain(&lab, &members, &knobs);
    let second = run_chain(&lab, &members, &knobs);
    assert_eq!(first, second, "chain rerun diverged");
    assert!(
        first.iter().any(|(label, _)| label == "blocking%"),
        "chain rows end with the shared blocking metric: {first:?}"
    );
}

#[test]
#[should_panic(expected = "window_days must be at least 1 day")]
fn zero_day_chain_window_is_rejected() {
    let world = World::generate(WorldConfig { days: 6, scale: 0.02, seed: 23 });
    let fleet = Fleet::alternating(4);
    let lab = AdversaryLab::new(&world, &fleet, 0..6, 1);
    let members = vec![registry::leaf("censor").expect("leaf")];
    run_chain(&lab, &members, &ChainKnobs { window_days: 0, ..Default::default() });
}

#[test]
#[should_panic(expected = "fetches_per_rate")]
fn zero_fetches_config_is_rejected() {
    let cfg = UsabilityConfig { fetches_per_rate: 0, ..Default::default() };
    evaluate(&cfg);
}

#[test]
#[should_panic(expected = "outside [0, 1]")]
fn percentage_style_rates_are_rejected() {
    let cfg = UsabilityConfig { blocking_rates: vec![65.0], ..Default::default() };
    evaluate(&cfg);
}

#[test]
#[should_panic(expected = "floodfills")]
fn more_floodfills_than_relays_is_rejected() {
    let cfg = UsabilityConfig { relays: 4, floodfills: 12, ..Default::default() };
    evaluate(&cfg);
}
