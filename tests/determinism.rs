//! Determinism smoke test: `World::generate` must be a pure function of
//! its `WorldConfig`. Every figure in the reproduction depends on this —
//! a nondeterministic world would make paper-vs-measured comparisons
//! unrepeatable.

use i2pscope::measure::fleet::Fleet;
use i2pscope::measure::population::daily_census;
use i2pscope::sim::world::{World, WorldConfig};

#[test]
fn world_generation_is_deterministic_across_runs() {
    let cfg = WorldConfig { days: 12, scale: 0.02, seed: 0xD5EED };
    let fleet = Fleet::paper_main();

    let censuses = |w: &World| -> Vec<(usize, usize, usize, usize, usize)> {
        (0..12)
            .map(|day| {
                let c = daily_census(w, &fleet, day);
                (c.peers, c.ipv4, c.all_ips, c.firewalled, c.hidden)
            })
            .collect()
    };

    let a = World::generate(cfg);
    let b = World::generate(cfg);

    assert_eq!(a.total_peers(), b.total_peers());
    assert_eq!(
        censuses(&a),
        censuses(&b),
        "identical WorldConfig must reproduce identical daily censuses"
    );
}

#[test]
fn world_generation_depends_on_every_config_field() {
    let base = WorldConfig { days: 12, scale: 0.02, seed: 0xD5EED };
    let fleet = Fleet::paper_main();
    let probe = |cfg: WorldConfig| {
        let w = World::generate(cfg);
        let c = daily_census(&w, &fleet, 3);
        (c.peers, c.ipv4)
    };

    let reference = probe(base);
    assert_ne!(reference, probe(WorldConfig { seed: 0xD5EED + 1, ..base }));
    assert_ne!(reference, probe(WorldConfig { scale: 0.04, ..base }));

    // A longer study window admits more arrivals, so the total population
    // must grow with `days` (early-day censuses may legitimately agree).
    let longer = World::generate(WorldConfig { days: 24, ..base });
    assert!(longer.total_peers() > World::generate(base).total_peers());
}
