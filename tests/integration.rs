//! Cross-crate integration tests: the full measurement pipeline from
//! world generation through every analysis, plus determinism and
//! consistency checks that span crate boundaries.

use i2pscope::measure::capacity::{bandwidth_table, capacity_histogram, floodfill_estimate};
use i2pscope::measure::censor::{blocking_matrix, censor_blacklist, victim_view};
use i2pscope::measure::churn::churn_curves;
use i2pscope::measure::fleet::Fleet;
use i2pscope::measure::geo::{as_distribution, country_distribution};
use i2pscope::measure::ipchurn::ip_churn_report;
use i2pscope::measure::population::{bandwidth_sweep, cumulative_by_router_count, daily_census};
use i2pscope::measure::report;
use i2pscope::sim::world::{World, WorldConfig};

fn world() -> World {
    World::generate(WorldConfig { days: 40, scale: 0.03, seed: 7_777 })
}

#[test]
fn full_pipeline_produces_all_figures() {
    let w = world();
    let fleet = Fleet::paper_main();

    // Every figure renders non-trivially from one world.
    let sweep = bandwidth_sweep(&w, 2..5);
    assert_eq!(sweep.len(), 7);
    assert!(!report::render_fig3(&sweep).is_empty());

    let curve = cumulative_by_router_count(&w, 20, 2..4);
    assert_eq!(curve.len(), 20);

    let census: Vec<_> = (0..10).map(|d| (d, daily_census(&w, &fleet, d))).collect();
    assert!(census.iter().all(|(_, c)| c.peers > 0));
    assert!(!report::render_fig5(&census).is_empty());

    let churn = churn_curves(&w, &fleet, 40, 30);
    assert!(churn.cohort > 0);

    let ip = ip_churn_report(&w, &fleet, 0..40);
    assert!(ip.known_ip_peers > 0);

    let cap = capacity_histogram(&w, &fleet, 2..6);
    assert!(cap.counts.iter().sum::<usize>() > 0);

    let t1 = bandwidth_table(&w, &fleet, 5);
    assert!(t1.group_sizes[3] > 0);

    let est = floodfill_estimate(&w, &fleet, 5);
    assert!(est.observed_floodfills > 0);

    let geo = country_distribution(&w, &fleet, 0..20);
    assert!(geo.total > 0);
    let ases = as_distribution(&w, &fleet, 0..20);
    assert!(ases.total > 0);

    let blocking = blocking_matrix(&w, &fleet, 35, &[1, 10], &[1, 5]);
    assert_eq!(blocking.len(), 2);
    assert!(!report::render_fig13(&blocking).is_empty());
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let w = world();
        let fleet = Fleet::paper_main();
        let census = daily_census(&w, &fleet, 5);
        let est = floodfill_estimate(&w, &fleet, 5);
        let blocking = blocking_matrix(&w, &fleet, 35, &[5], &[1]);
        (census.peers, census.ipv4, est.observed_floodfills, blocking[0].points[0].1.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn blocking_rate_consistent_with_raw_sets() {
    let w = world();
    let fleet = Fleet::alternating(20);
    let victim = victim_view(&w, 35, 0x51C);
    let bl = censor_blacklist(&w, &fleet, 10, 5, 35);
    let manual = victim.known_ips.iter().filter(|ip| bl.contains(ip)).count() as f64
        / victim.known_ips.len().max(1) as f64
        * 100.0;
    let series = blocking_matrix(&w, &fleet, 35, &[10], &[5]);
    assert!((series[0].points[0].1 - manual).abs() < 1e-9);
}

#[test]
fn censuses_relate_sanely_across_analyses() {
    let w = world();
    let fleet = Fleet::paper_main();
    let day = 5u64;
    let census = daily_census(&w, &fleet, day);
    let t1 = bandwidth_table(&w, &fleet, day);
    // Table 1's total group equals the census peer count.
    assert_eq!(t1.group_sizes[3], census.peers);
    // Reachable + unreachable = total.
    assert_eq!(t1.group_sizes[1] + t1.group_sizes[2], census.peers);
    // Unknown-IP peers are a subset of unreachable peers.
    assert!(census.unknown_ip <= t1.group_sizes[2]);
    // Floodfill estimate's observed floodfills never exceed the total.
    let est = floodfill_estimate(&w, &fleet, day);
    assert!(est.observed_floodfills <= census.peers);
    assert!(est.qualified_floodfills <= est.observed_floodfills);
}

#[test]
fn geo_totals_dominated_by_peers_but_bounded() {
    let w = world();
    let fleet = Fleet::paper_main();
    let geo = country_distribution(&w, &fleet, 0..15);
    let ip = ip_churn_report(&w, &fleet, 0..15);
    // Every known-IP peer contributes at least one (peer, country) and
    // at most its distinct-country count.
    assert!(geo.total >= ip.known_ip_peers - geo.unresolved_addresses.min(ip.known_ip_peers));
    // Cumulative percentages are monotone and end at 100.
    let last = geo.rows.last().unwrap();
    assert!((last.cumulative_pct - 100.0).abs() < 1e-6);
    for w2 in geo.rows.windows(2) {
        assert!(w2[1].cumulative_pct >= w2[0].cumulative_pct);
        assert!(w2[0].peers >= w2[1].peers, "rows sorted descending");
    }
}

#[test]
fn usability_single_rate_end_to_end() {
    use i2pscope::measure::usability::{run_one_rate, UsabilityConfig};
    let cfg = UsabilityConfig {
        relays: 32,
        floodfills: 6,
        fetches_per_rate: 3,
        blocking_rates: vec![],
        ..Default::default()
    };
    let clean = run_one_rate(&cfg, 0.0, 99);
    assert_eq!(clean.timeout_pct, 0.0);
    assert!(clean.avg_load_time_s > 0.0 && clean.avg_load_time_s < 15.0);
    let censored = run_one_rate(&cfg, 0.9, 99);
    assert!(
        censored.timeout_pct >= 33.0 || censored.avg_load_time_s > clean.avg_load_time_s * 3.0,
        "90% blocking must degrade service: {censored:?}"
    );
}

#[test]
fn seeds_change_everything_but_structure() {
    let a = World::generate(WorldConfig { days: 10, scale: 0.02, seed: 1 });
    let b = World::generate(WorldConfig { days: 10, scale: 0.02, seed: 2 });
    let fleet = Fleet::paper_main();
    let ca = daily_census(&a, &fleet, 3);
    let cb = daily_census(&b, &fleet, 3);
    // Different seeds: different exact numbers…
    assert_ne!((ca.peers, ca.ipv4), (cb.peers, cb.ipv4));
    // …same structural facts.
    assert!(ca.all_ips < ca.peers && cb.all_ips < cb.peers);
    assert!(ca.firewalled > ca.hidden && cb.firewalled > cb.hidden);
}
