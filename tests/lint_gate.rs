//! The lint gate's own regression net.
//!
//! Three claims are pinned here: (1) the fixture corpus under
//! `crates/lint/fixtures/` produces exactly the findings catalogued in
//! `tests/golden/lint_report.json`, byte-for-byte; (2) the report is
//! deterministic — two runs render identically; (3) the workspace
//! itself scans clean, which is what lets CI run `i2p-lint --deny` as
//! a hard gate.
//!
//! When the analyzer or the fixtures change intentionally, regenerate
//! the golden and commit it alongside:
//!
//! ```text
//! I2PSCOPE_BLESS=1 cargo test --test lint_gate
//! ```

use i2p_lint::{run, Config, Report};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Scans the fixture corpus rooted at the lint crate, so report paths
/// read `fixtures/…` and no workspace `approved` scope matches.
fn fixture_report() -> Report {
    let lint_root = workspace_root().join("crates/lint");
    run(&Config::paths(lint_root, vec![PathBuf::from("fixtures")])).expect("fixture scan")
}

fn rules_hit(report: &Report, path_stem: &str) -> Vec<String> {
    let mut rules: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.path.contains(path_stem))
        .map(|f| f.rule.clone())
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn fixture_corpus_matches_golden() {
    let actual = fixture_report().render_json();
    let path = workspace_root().join("tests/golden/lint_report.json");
    if std::env::var("I2PSCOPE_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &actual).expect("bless lint golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing tests/golden/lint_report.json; generate it with \
             `I2PSCOPE_BLESS=1 cargo test --test lint_gate` and commit it"
        )
    });
    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "lint_report.json diverges at line {}", i + 1);
        }
        assert_eq!(actual.len(), expected.len(), "lint_report.json length drifted");
    }
}

#[test]
fn report_is_byte_stable_across_runs() {
    let first = fixture_report();
    let second = fixture_report();
    assert_eq!(first.render_json(), second.render_json());
    assert_eq!(first.render_text(), second.render_text());
    assert_eq!(first.summary(), second.summary());
}

#[test]
fn every_rule_class_fires_in_its_fixture() {
    let report = fixture_report();
    assert_eq!(rules_hit(&report, "clock_ban"), ["clock-ban"]);
    assert_eq!(rules_hit(&report, "wall_clock"), ["wall-clock-outside-telemetry"]);
    assert_eq!(rules_hit(&report, "nondet_hash"), ["nondet-hash"]);
    assert_eq!(rules_hit(&report, "rng_containment"), ["rng-containment"]);
    assert_eq!(rules_hit(&report, "io_containment"), ["io-containment"]);
    assert_eq!(rules_hit(&report, "thread_identity"), ["thread-identity"]);
    assert_eq!(rules_hit(&report, "panic_audit"), ["panic-audit"]);
    assert_eq!(rules_hit(&report, "index_literal"), ["index-literal"]);
    assert_eq!(rules_hit(&report, "unsafe_audit"), ["unsafe-audit"]);
}

#[test]
fn tricky_non_findings_stay_silent() {
    let report = fixture_report();
    // Banned names in strings, raw strings, doc comments, and test
    // modules never fire; the two valid allows land in the ledger.
    assert_eq!(rules_hit(&report, "non_findings"), Vec::<String>::new());
    let allows: Vec<_> =
        report.allows.iter().filter(|a| a.path.contains("non_findings")).collect();
    assert_eq!(allows.len(), 2);
    assert!(allows.iter().all(|a| !a.reason.is_empty()));
}

#[test]
fn directive_misuse_is_a_finding_and_suppresses_nothing() {
    let report = fixture_report();
    let rules = rules_hit(&report, "bad_directive");
    assert_eq!(rules, ["directive", "index-literal"]);
    let directive_findings = report
        .findings
        .iter()
        .filter(|f| f.path.contains("bad_directive") && f.rule == "directive")
        .count();
    // Missing reason, unknown rule, and a stale own-line directive.
    assert_eq!(directive_findings, 3);
    let surviving = report
        .findings
        .iter()
        .filter(|f| f.path.contains("bad_directive") && f.rule == "index-literal")
        .count();
    assert_eq!(surviving, 2, "invalid directives must not suppress violations");
}

#[test]
fn workspace_scans_clean() {
    let report = run(&Config::workspace(workspace_root())).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; run `cargo run -p i2p-lint` for details:\n{}",
        report.render_text()
    );
    // Every suppression in the tree carries a reason.
    assert!(report.allows.iter().all(|a| !a.reason.is_empty()));
    assert!(report.files_scanned > 100, "walk shrank: {} files", report.files_scanned);
}

#[test]
fn summary_line_is_machine_readable() {
    let report = fixture_report();
    let line = report.summary();
    assert!(line.starts_with("i2p-lint: rules_checked="));
    for key in ["rules_checked=", "files_scanned=", "findings=", "allows="] {
        assert!(line.contains(key), "summary missing {key}: {line}");
    }
}
