//! Scale suite: the sharded engine and the lazy archive reader are
//! pure optimisations — they must never change a rendered byte.
//!
//! Pins the contracts behind the million-router scale work:
//!
//! * **Sharded ≡ oracle at scale 1** — the work-stealing shard fill,
//!   at every worker count, renders the full figure suite
//!   byte-identical to the sequential unsharded oracle, under both
//!   visibility models.
//! * **Lazy ≡ eager replay** — `figures --from` through the
//!   segment-on-demand [`LazySnapshot`] renders byte-identical to the
//!   eager whole-file loader.
//! * **Million-router stress** (`#[ignore]`, run explicitly) — a
//!   ~1.08M-router world fills, streams every figure family, and
//!   archives round-trip, with the shard ledger accounting for the
//!   work.

use i2pscope::cli::{self, FigId, Format, Knobs, Model};
use i2pscope::measure::fleet::Fleet;
use i2pscope::measure::keyspace::VisibilityModel;
use i2pscope::measure::{HarvestEngine, KeyspaceConfig};
use i2pscope::sim::world::{World, WorldConfig};
use i2pscope::store::Snapshot;
use i2pscope::telemetry::counters::{self, Counter};
use std::path::PathBuf;

const SEED: u64 = 20_180_201;

fn knobs(scale: f64, days: u64, fleet: usize) -> Knobs {
    Knobs {
        scale,
        seed: SEED,
        days,
        fleet,
        replicates: 1,
        threads: 1,
        model: Model::Uniform,
        faults: "".parse().expect("empty fault spec"),
    }
}

/// A self-cleaning scratch file under the system temp dir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("i2pscope-scale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir scratch");
        Scratch(dir.join(name))
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// The tentpole parity pin: at scale 1 (the paper-scale default,
/// ~180k routers spanning many id-range shards), the sharded
/// work-stealing fill renders the complete figure suite byte-identical
/// to the unsharded sequential oracle — for every worker count, both
/// visibility models, both output formats.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "scale-1 oracle fill is minutes unoptimised; CI runs this via `cargo test --release --test scale_parity`"
)]
fn sharded_figures_match_oracle_at_scale_one() {
    let days = 3u64;
    let world = World::generate(WorldConfig { days, scale: 1.0, seed: SEED });
    let fleet = Fleet::alternating(4);
    for model in [
        VisibilityModel::Uniform,
        VisibilityModel::Keyspace(KeyspaceConfig::paper()),
    ] {
        let oracle = HarvestEngine::build_oracle(&world, &fleet, 0..days, &model);
        for threads in [1usize, 2, 8] {
            let sharded = HarvestEngine::with_vantages_model_threads(
                &world,
                fleet.vantages.clone(),
                0..days,
                &model,
                threads,
            );
            for format in [Format::Text, Format::Csv] {
                assert_eq!(
                    cli::render_figures(&sharded, format, &FigId::ALL),
                    cli::render_figures(&oracle, format, &FigId::ALL),
                    "sharded figures diverged from the oracle \
                     (model {model:?}, {threads} workers, {format:?})"
                );
            }
        }
    }
}

/// `figures --from` replays through the lazy segment-on-demand reader;
/// its bytes must match both the eager loader and the live engine the
/// archive was captured from — and the lazy ledger must show segments
/// were actually faulted in on demand, not preloaded.
#[test]
fn lazy_replay_matches_eager_replay_and_live_render() {
    let scratch = Scratch::new("lazy-parity.i2ps");
    let k = knobs(0.02, 6, 5);
    cli::harvest(&k, scratch.path(), false).expect("harvest");

    let eager = Snapshot::read_recover(scratch.path()).expect("eager read").0;
    let live = cli::figures_live(&k, Format::Text, &FigId::ALL);
    for format in [Format::Text, Format::Csv] {
        let base = counters::snapshot();
        let lazy = cli::figures_from(scratch.path(), format, &FigId::ALL, true)
            .expect("lazy replay");
        let delta = counters::snapshot().delta_since(&base);
        assert!(
            delta.get(Counter::SegmentsLazyLoaded) > 0,
            "lazy replay never faulted a segment in"
        );
        assert_eq!(
            lazy,
            cli::render_figures(&eager, format, &FigId::ALL),
            "lazy replay diverged from the eager loader ({format:?})"
        );
        if format == Format::Text {
            assert_eq!(lazy, live, "replayed figures diverged from the live render");
        }
    }
}

/// The perf contract behind the fast default: the complete figure
/// suite at scale 1 — sharded fill plus every streaming query — stays
/// under a wall-clock budget. The budget (5s) is deliberately several
/// times the measured time (see `BENCH_scale.json`) so CI machine
/// jitter cannot flake it while a complexity regression (e.g. a query
/// falling back to O(population × vantages) peak memory churn) still
/// trips it.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock budget is calibrated for release codegen; CI runs this via `cargo test --release --test scale_parity`"
)]
fn scale_one_figure_suite_meets_wall_clock_budget() {
    let days = 3u64;
    let world = World::generate(WorldConfig { days, scale: 1.0, seed: SEED });
    let fleet = Fleet::alternating(4);
    let start = std::time::Instant::now();
    let engine = HarvestEngine::build_with(&world, &fleet, 0..days, &VisibilityModel::Uniform);
    let _text = cli::render_figures(&engine, Format::Text, &FigId::ALL);
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "scale-1 fill + full figure suite took {elapsed:?} (budget 5s)"
    );
}

/// Million-router stress smoke (scale 6.0 ≈ 1.08M routers). Ignored by
/// default — run with `cargo test --release -- --ignored` — because it
/// allocates a seven-figure world on purpose. Exercises the sharded
/// fill, every streaming figure family, and the archive round trip,
/// then checks the shard ledger accounted for the work.
#[test]
#[ignore = "allocates a ~1.08M-router world; run explicitly with --ignored"]
fn million_router_stress_smoke() {
    let days = 2u64;
    let world = World::generate(WorldConfig { days, scale: 6.0, seed: SEED });
    assert!(
        world.peers.len() > 1_000_000,
        "stress tier must exceed one million routers (got {})",
        world.peers.len()
    );

    let fleet = Fleet::alternating(4);
    let base = counters::snapshot();
    let engine = HarvestEngine::build_with(&world, &fleet, 0..days, &VisibilityModel::Uniform);
    let fill = counters::snapshot().delta_since(&base);
    let shards = world.index.shard_count() as u64;
    assert_eq!(
        fill.get(Counter::EngineShardUnits),
        fleet.vantages.len() as u64 * shards,
        "every (vantage, shard) unit must be filled exactly once"
    );

    // Every query family streams in O(block) peak memory.
    let curve = engine.coverage_curve(0);
    assert_eq!(curve.len(), fleet.vantages.len());
    assert!(engine.count_union(0) > 100_000, "day-0 union implausibly small");
    assert!(!engine.harvest_window(0..days).is_empty());

    // The archive round trip survives the scale tier too.
    let scratch = Scratch::new("million.i2ps");
    let snapshot = Snapshot::capture(&engine);
    snapshot
        .write_to_with(scratch.path(), &i2pscope::faults::FaultPlane::zero())
        .expect("write snapshot");
    let replay = cli::figures_from(scratch.path(), Format::Csv, &[FigId::Fig4], false)
        .expect("lazy replay at scale 6");
    assert!(!replay.is_empty());
}
