//! Telemetry neutrality and manifest-contract tests.
//!
//! The telemetry plane's whole value rests on two claims, pinned here:
//!
//! 1. **Neutrality** — enabling telemetry changes *no byte* of any
//!    deterministic output: figures (text and CSV), audit lines, and
//!    `.i2ps` snapshot encodings are identical with the timing plane
//!    on or off. (The timing plane is the only part that reads clocks;
//!    counters are always on and never feed back into results.)
//! 2. **Thread invariance** — the deterministic counters are sums of
//!    per-work-item contributions, so a run at 1 thread and a run at
//!    N threads produce byte-equal counter totals.
//!
//! Plus the manifest contract: after the calibration probe, a run
//! manifest validates against the `i2p-telemetry/1` schema and its
//! span tree covers the four core crates (measure, store, netdb,
//! transport), and the Chrome trace export parses.
//!
//! Note on globals: `timing::enable()` is process-wide and sticky, so
//! every on-vs-off comparison renders its "off" output *first* within
//! one test, and counter tests take deltas under
//! `counters::exclusive` (the suite runs multi-threaded).

use i2p_faults::FaultSpec;
use i2pscope::cli::{self, FigId, Format, Knobs, Model};
use i2pscope::telemetry::{counters, manifest, timing};
use i2pscope::{probe, store::Snapshot};

fn knobs(threads: usize) -> Knobs {
    Knobs {
        scale: 0.01,
        seed: 77,
        days: 3,
        fleet: 4,
        replicates: 1,
        threads,
        model: Model::Uniform,
        faults: FaultSpec::default(),
    }
}

#[test]
fn figures_and_audit_are_byte_identical_with_telemetry_on() {
    let k = knobs(0);
    // "Off" renders first: enable() is sticky, so order matters.
    let text_off = cli::figures_live_audited(&k, Format::Text, &FigId::ALL);
    let csv_off = cli::figures_live_audited(&k, Format::Csv, &FigId::ALL);
    timing::enable();
    let text_on = cli::figures_live_audited(&k, Format::Text, &FigId::ALL);
    let csv_on = cli::figures_live_audited(&k, Format::Csv, &FigId::ALL);
    assert_eq!(text_off, text_on, "text figures drift when telemetry is enabled");
    assert_eq!(csv_off, csv_on, "CSV figures drift when telemetry is enabled");
}

#[test]
fn snapshot_encoding_is_byte_identical_with_telemetry_on() {
    let k = knobs(0);
    let world = k.world();
    let fleet = k.fleet();
    let engine = i2pscope::measure::engine::HarvestEngine::build(&world, &fleet, 0..k.days);
    let bytes_off = Snapshot::capture(&engine).to_bytes().expect("encode");
    timing::enable();
    let engine = i2pscope::measure::engine::HarvestEngine::build(&world, &fleet, 0..k.days);
    let bytes_on = Snapshot::capture(&engine).to_bytes().expect("encode");
    assert_eq!(bytes_off, bytes_on, ".i2ps encoding drifts when telemetry is enabled");
    // And the archive round-trips regardless of the plane's state.
    let decoded = Snapshot::from_bytes(&bytes_on).expect("decode");
    assert!(decoded.verify_router_infos().expect("verify") > 0);
}

#[test]
fn counters_are_byte_equal_across_thread_counts() {
    let k1 = knobs(1);
    let k7 = knobs(7);
    let (delta_one, out_one) =
        counters::exclusive(|| cli::adversary(&k1, "censor", Format::Text, None));
    let (delta_many, out_many) =
        counters::exclusive(|| cli::adversary(&k7, "censor", Format::Text, None));
    assert_eq!(out_one.expect("run"), out_many.expect("run"));
    for ((name, one), (_, many)) in delta_one.entries().zip(delta_many.entries()) {
        assert_eq!(one, many, "counter {name} varies with thread count");
    }
    assert!(delta_one.total() > 0, "the adversary run moved no counters");
}

#[test]
fn sweep_counters_are_thread_invariant_and_count_cells() {
    let (delta_one, _) = counters::exclusive(|| cli::sweep(&knobs(1), Format::Text));
    let (delta_two, _) = counters::exclusive(|| cli::sweep(&knobs(2), Format::Text));
    let cells = delta_one.get(counters::Counter::SweepCells);
    assert!(cells > 0, "the usability sweep recorded no cells");
    assert_eq!(cells, delta_two.get(counters::Counter::SweepCells));
}

#[test]
fn manifest_validates_and_covers_the_four_core_crates() {
    timing::enable();
    let k = knobs(0);
    // A figures run plus the calibration probe — exactly what the
    // binary does for `i2pscope figures --telemetry`.
    let _ = cli::figures_live(&k, Format::Text, &[FigId::Fig4]);
    probe::calibrate();
    let text = cli::telemetry_manifest("figures", &k);
    let summary = manifest::validate_manifest(&text).expect("manifest validates");
    assert_eq!(summary.schema, "i2p-telemetry/1");
    assert_eq!(summary.command, "figures");
    let covered = summary.crates_covered();
    for needed in ["measure", "store", "netdb", "transport"] {
        assert!(covered.iter().any(|c| c == needed), "span tree misses {needed}: {covered:?}");
    }
    assert!(summary.span_count >= 4, "span tree too small: {}", summary.span_count);
    // Every counter the manifest archives must echo u64 lexemes; the
    // knob echo must include the fault spec (degraded runs carry their
    // fault totals and their spec side by side).
    assert!(summary.knobs.iter().any(|(k, _)| k == "faults"));
    let trace = cli::telemetry_trace();
    let events = manifest::validate_trace(&trace).expect("trace parses");
    assert!(events >= 4, "trace too small: {events}");
}

#[test]
fn counter_dump_diffs_cleanly() {
    timing::enable();
    let k = knobs(0);
    let text = cli::telemetry_manifest("census", &k);
    let summary = manifest::validate_manifest(&text).expect("manifest validates");
    let dump = summary.counter_dump();
    assert_eq!(dump.lines().count(), summary.counters.len());
    for line in dump.lines() {
        let (name, value) = line.split_once('=').expect("name=value");
        assert!(!name.is_empty());
        assert!(value.bytes().all(|b| b.is_ascii_digit()), "non-integer counter {line}");
    }
}
