//! Chaos suite: the deterministic fault plane end to end.
//!
//! Pins the contracts that make chaos runs CI-able (DESIGN.md §10):
//!
//! * **Zero-fault parity** — the fault plane compiled in with an empty
//!   spec is byte-identical to the unfaulted pipeline.
//! * **Determinism** — same seed + same fault spec ⇒ byte-identical
//!   figures and audit lines across reruns and thread counts.
//! * **Monotone degradation** — raising a fault rate never *adds*
//!   coverage (keyed threshold draws nest in the rate).
//! * **Crash-safety** — an injected writer kill at any crash-point
//!   never tears an existing `.i2ps`; a truncated archive recovers via
//!   quarantine and `harvest --resume` completes it to the exact bytes
//!   a one-shot harvest would have produced.
//! * **Spec UX** — malformed specs fail with the token and the full
//!   supported-key list, never a panic.

use i2pscope::cli::{self, FigId, Format, Knobs, Model};
use i2pscope::faults::{FaultPlane, FaultSpec};
use i2pscope::measure::fleet::Fleet;
use i2pscope::measure::keyspace::VisibilityModel;
use i2pscope::measure::{lab, HarvestEngine, SnapshotSource};
use i2pscope::sim::world::{World, WorldConfig};
use i2pscope::store::{Snapshot, StoreError};
use std::path::PathBuf;

const SCALE: f64 = 0.02;
const SEED: u64 = 20_180_201;
const DAYS: u64 = 8;

fn knobs(spec: &str) -> Knobs {
    Knobs {
        scale: SCALE,
        seed: SEED,
        days: DAYS,
        fleet: 6,
        replicates: 1,
        threads: 1,
        model: Model::Uniform,
        faults: spec.parse().expect("valid fault spec"),
    }
}

fn world() -> World {
    World::generate(WorldConfig { days: DAYS, scale: SCALE, seed: SEED })
}

/// A self-cleaning scratch file under the system temp dir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("i2pscope-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir scratch");
        Scratch(dir.join(name))
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn zero_fault_plane_is_byte_identical_to_the_unfaulted_pipeline() {
    // The parity contract: threading an all-zero plane through the
    // engine changes nothing, and an explicit all-zero spec is the
    // same plane as no spec at all.
    let zeroed = "loss=0, delay=0, dup=0, ff_crash=0, stall=0, outage=0, flake=0, io_crash=0"
        .parse::<FaultSpec>()
        .expect("zero spec parses");
    assert!(zeroed.is_zero());
    assert_eq!(zeroed, FaultSpec::default());

    let world = world();
    let fleet = Fleet::alternating(6);
    let plain = HarvestEngine::build_with(&world, &fleet, 0..DAYS, &VisibilityModel::Uniform);
    let faulted = HarvestEngine::build_faulted(
        &world,
        &fleet,
        0..DAYS,
        &VisibilityModel::Uniform,
        &FaultPlane::zero(),
    );
    for format in [Format::Text, Format::Csv] {
        assert_eq!(
            cli::render_figures(&plain, format, &FigId::ALL),
            cli::render_figures(&faulted, format, &FigId::ALL),
            "zero-fault {format:?} figures diverged from the unfaulted build"
        );
    }
    // The audit line renders the zero spec as `-` and full coverage.
    let audit = cli::audit_line(&knobs(""), &plain);
    assert!(audit.contains("faults=-"), "zero spec audit: {audit}");
    assert!(audit.contains(&format!("days_observed={DAYS}/{DAYS}")), "audit: {audit}");
}

#[test]
fn faulted_figures_and_audit_lines_are_deterministic() {
    let k = knobs("outage=0.25,loss=0.05,stall=4");
    for format in [Format::Text, Format::Csv] {
        let first = cli::figures_live_audited(&k, format, &FigId::ALL);
        let second = cli::figures_live_audited(&k, format, &FigId::ALL);
        assert_eq!(first, second, "faulted {format:?} rerun diverged");
    }
    // This spec darkens cells at this seed, so the degraded-harvest
    // annotation must lead the render (deterministic, hence stable).
    let text = cli::figures_live_audited(&k, Format::Text, &FigId::ALL);
    assert!(
        text.starts_with("degraded harvest:"),
        "faulted figures carry the coverage annotation: {}",
        text.lines().next().unwrap_or("")
    );
}

#[test]
fn faulted_usability_sweep_is_thread_count_independent() {
    // The Fig. 14 sweep threads the plane into the TestNet fabric and
    // the fetch-retry loop; results must not depend on the lab's
    // thread count.
    let mut k = knobs("flake=0.3,loss=0.03");
    k.threads = 1;
    let one = cli::sweep(&k, Format::Csv);
    k.threads = 4;
    let four = cli::sweep(&k, Format::Csv);
    assert_eq!(one, four, "faulted usability sweep depends on thread count");
}

#[test]
fn outage_grid_coverage_is_monotone_and_sweep_parallelism_free() {
    // A fault grid through the scenario lab: coverage can only shrink
    // as the outage rate rises (threshold draws nest), and the sweep
    // itself is thread-count independent.
    let world = world();
    let fleet = Fleet::alternating(6);
    let grid = ["0", "0.1", "0.25", "0.5", "0.75", "1"];
    let run = |wf: &(&World, &Fleet), rate: &&str, _i: usize| {
        let k = knobs(&format!("outage={rate}"));
        let engine = HarvestEngine::build_faulted(
            wf.0,
            wf.1,
            0..DAYS,
            &VisibilityModel::Uniform,
            &k.plane(),
        );
        (engine.coverage().cells_observed, cli::audit_line(&k, &engine))
    };
    let substrate = (&world, &fleet);
    let swept = lab::sweep(&substrate, &grid, 1, run);
    assert_eq!(swept, lab::sweep(&substrate, &grid, 3, run), "fault grid depends on threads");

    let cells: Vec<usize> = swept.iter().map(|(c, _)| *c).collect();
    let full = DAYS as usize * fleet.vantages.len();
    assert_eq!(cells[0], full, "outage=0 keeps every cell");
    assert_eq!(*cells.last().unwrap(), 0, "outage=1 darkens every cell");
    assert!(cells.windows(2).all(|w| w[1] <= w[0]), "coverage not monotone: {cells:?}");
}

#[test]
fn faulted_sharded_fill_matches_oracle_at_every_worker_count() {
    // Outage blanking happens after the sharded fill, so the faulted
    // engine must stay bit-identical to the sequential oracle fill with
    // the same plane applied — at any worker count, in both models.
    let world = world();
    let fleet = Fleet::alternating(6);
    let plane = knobs("outage=0.25,loss=0.05").plane();
    for model in [
        VisibilityModel::Uniform,
        VisibilityModel::Keyspace(i2pscope::measure::KeyspaceConfig::paper()),
    ] {
        let mut oracle = HarvestEngine::build_oracle(&world, &fleet, 0..DAYS, &model);
        oracle.apply_outages(&plane);
        for threads in [1usize, 3, 9] {
            let mut sharded = HarvestEngine::with_vantages_model_threads(
                &world,
                fleet.vantages.clone(),
                0..DAYS,
                &model,
                threads,
            );
            sharded.apply_outages(&plane);
            for day in 0..DAYS {
                for v in 0..fleet.vantages.len() {
                    assert_eq!(
                        sharded.vantage_ids(v, day),
                        oracle.vantage_ids(v, day),
                        "threads {threads} day {day} vantage {v}"
                    );
                }
            }
            for format in [Format::Text, Format::Csv] {
                assert_eq!(
                    cli::render_figures(&sharded, format, &FigId::ALL),
                    cli::render_figures(&oracle, format, &FigId::ALL),
                    "faulted {format:?} figures depend on fill worker count"
                );
            }
        }
    }
}

#[test]
fn injected_writer_kills_never_tear_an_existing_archive() {
    // Satellite (a) at the CLI layer: seed the destination with a
    // (recognizably different) degraded archive, then kill the writer
    // at each pre-publish crash-point — the old archive must survive
    // byte-for-byte. Point 5 fires after the rename, so the new bytes
    // are already live.
    let reference = Scratch::new("io_reference.i2ps");
    cli::harvest(&knobs(""), reference.path(), false).expect("reference harvest");
    let clean = std::fs::read(reference.path()).expect("read reference");

    let dest = Scratch::new("io_crash.i2ps");
    cli::harvest(&knobs("outage=0.5"), dest.path(), false).expect("seed harvest");
    let old = std::fs::read(dest.path()).expect("read seeded archive");
    assert_ne!(old, clean, "the seeded archive must differ from the clean one");

    for point in 1..=4u32 {
        let err = cli::harvest(&knobs(&format!("io_crash={point}")), dest.path(), false)
            .expect_err("writer killed");
        assert!(
            matches!(err, StoreError::InjectedCrash { point: p } if p == point),
            "unexpected error at point {point}: {err}"
        );
        assert_eq!(
            std::fs::read(dest.path()).expect("read after crash"),
            old,
            "destination torn at crash-point {point}"
        );
    }

    let err =
        cli::harvest(&knobs("io_crash=5"), dest.path(), false).expect_err("killed post-rename");
    assert!(matches!(err, StoreError::InjectedCrash { point: 5 }), "point 5: {err}");
    assert_eq!(
        std::fs::read(dest.path()).expect("read after rename"),
        clean,
        "crash-point 5 fires after publication, so the clean bytes are live"
    );
    Snapshot::read_from(dest.path()).expect("published archive loads");
}

#[test]
fn a_truncated_archive_recovers_and_resumes_to_the_one_shot_bytes() {
    // The headline recovery roundtrip, under a *faulted* spec so resume
    // exercises the plane too: one-shot harvest → truncate mid-file →
    // quarantine-and-recover → `--resume` harvests the missing days →
    // byte-identical to the one-shot archive.
    let k = knobs("outage=0.3");
    let one_shot = Scratch::new("resume_oneshot.i2ps");
    cli::harvest(&k, one_shot.path(), false).expect("one-shot harvest");
    let want = std::fs::read(one_shot.path()).expect("read one-shot");

    let damaged = Scratch::new("resume_damaged.i2ps");
    std::fs::write(damaged.path(), &want[..want.len() * 2 / 3]).expect("plant truncated");
    assert!(
        Snapshot::read_from(damaged.path()).is_err(),
        "strict load must reject the truncated archive"
    );

    let summary = cli::harvest(&k, damaged.path(), true).expect("resume");
    assert!(summary.contains("resume: existing snapshot recovered"), "summary: {summary}");
    assert_eq!(
        std::fs::read(damaged.path()).expect("read resumed"),
        want,
        "resumed archive is not byte-identical to the one-shot harvest"
    );
    let loaded = Snapshot::read_from(damaged.path()).expect("resumed archive loads strictly");
    assert_eq!(loaded.verify_router_infos().expect("verify"), loaded.total_rows());

    // Resuming an intact archive is a no-op.
    let summary = cli::harvest(&k, damaged.path(), true).expect("idempotent resume");
    assert!(summary.contains("nothing to do"), "summary: {summary}");
    assert_eq!(std::fs::read(damaged.path()).expect("read again"), want);

    // Resume refuses an archive from different knobs.
    let mut alien = k;
    alien.seed ^= 1;
    let err = cli::harvest(&alien, damaged.path(), true).expect_err("knob mismatch");
    assert!(err.to_string().contains("does not match"), "mismatch error: {err}");
}

#[test]
fn malformed_specs_name_the_token_and_list_the_supported_keys() {
    let err = FaultSpec::parse("bogus=1").expect_err("unknown key");
    assert!(err.contains("bogus"), "error names the token: {err}");
    assert!(err.contains("supported keys"), "error lists support: {err}");
    for key in ["loss", "delay", "dup", "ff_crash", "stall", "outage", "flake", "io_crash"] {
        assert!(err.contains(key), "error lists {key}: {err}");
    }
    assert!(FaultSpec::parse("loss").is_err(), "bare key rejected");
    assert!(FaultSpec::parse("loss=1.5").is_err(), "probability above 1 rejected");
    assert!(FaultSpec::parse("loss=-0.1").is_err(), "negative probability rejected");
    assert!(FaultSpec::parse("loss=NaN").is_err(), "NaN rejected");
    assert!(FaultSpec::parse("io_crash=9").is_err(), "crash-point above the map rejected");
    assert!("".parse::<FaultSpec>().expect("empty spec").is_zero());
    assert!(" , , ".parse::<FaultSpec>().expect("blank spec").is_zero());
}
