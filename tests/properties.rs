//! Property-based tests (proptest) over the core data structures and
//! invariants of the whole stack.

use i2pscope::crypto::{sha256, ChaCha20, DetRng};
use i2pscope::data::addr::{Introducer, RouterAddress, TransportStyle};
use i2pscope::data::caps::{BandwidthClass, Caps};
use i2pscope::data::ident::RouterIdentity;
use i2pscope::data::leaseset::{Lease, LeaseSet};
use i2pscope::data::{Hash256, PeerIp, RouterInfo, SimTime};
use i2pscope::netdb::kbucket::KBucketTable;
use i2pscope::netdb::routing_key::RoutingKey;
use i2pscope::router::net::{EepRequest, EepResponse};
use i2pscope::transport::blocklist::BlockList;
use i2pscope::tunnel::garlic::{Clove, DeliveryInstructions, GarlicMessage};
use i2pscope::tunnel::layered::TunnelKeys;
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = PeerIp> {
    prop_oneof![any::<u32>().prop_map(PeerIp::V4), any::<u128>().prop_map(PeerIp::V6)]
}

fn arb_class() -> impl Strategy<Value = BandwidthClass> {
    prop_oneof![
        Just(BandwidthClass::K),
        Just(BandwidthClass::L),
        Just(BandwidthClass::M),
        Just(BandwidthClass::N),
        Just(BandwidthClass::O),
        Just(BandwidthClass::P),
        Just(BandwidthClass::X),
    ]
}

fn arb_caps() -> impl Strategy<Value = Caps> {
    (arb_class(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(bandwidth, floodfill, reachable, hidden)| Caps { bandwidth, floodfill, reachable, hidden },
    )
}

fn arb_address() -> impl Strategy<Value = RouterAddress> {
    let style = prop_oneof![Just(TransportStyle::Ntcp), Just(TransportStyle::Ssu)];
    let intro = (any::<u64>(), arb_ip(), any::<u32>()).prop_map(|(s, ip, tag)| Introducer {
        router: Hash256::digest(&s.to_be_bytes()),
        ip,
        tag,
    });
    (style, proptest::option::of(arb_ip()), 9000u16..=31000, proptest::collection::vec(intro, 0..3), any::<u8>())
        .prop_map(|(style, ip, port, introducers, cost)| RouterAddress {
            style,
            ip,
            port,
            introducers,
            cost,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- crypto ------------------------------------------------------

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let a = sha256(&data);
        prop_assert_eq!(a, sha256(&data));
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            prop_assert_ne!(a, sha256(&flipped));
        }
    }

    #[test]
    fn chacha_roundtrips(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                         data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = data.clone();
        ChaCha20::xor(&key, &nonce, &mut buf);
        ChaCha20::xor(&key, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn detrng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = DetRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    // ---- XOR metric ----------------------------------------------------

    #[test]
    fn xor_metric_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ha, hb, hc) = (
            Hash256::digest(&a.to_be_bytes()),
            Hash256::digest(&b.to_be_bytes()),
            Hash256::digest(&c.to_be_bytes()),
        );
        // Symmetry and identity.
        prop_assert_eq!(ha.distance(&hb), hb.distance(&ha));
        prop_assert_eq!(ha.distance(&ha), i2pscope::data::hash::Distance::ZERO);
        // XOR relation: d(a,c) = d(a,b) ⊕ d(b,c).
        let ab = ha.distance(&hb).0;
        let bc = hb.distance(&hc).0;
        let mut x = [0u8; 32];
        for i in 0..32 { x[i] = ab[i] ^ bc[i]; }
        prop_assert_eq!(x, ha.distance(&hc).0);
    }

    #[test]
    fn routing_keys_rotate_but_are_stable_within_day(seed in any::<u64>(), day in 0u64..500) {
        let h = Hash256::digest(&seed.to_be_bytes());
        prop_assert_eq!(RoutingKey::for_day(&h, day), RoutingKey::for_day(&h, day));
        prop_assert_ne!(RoutingKey::for_day(&h, day).0, h, "routing key differs from raw hash");
    }

    // ---- codecs --------------------------------------------------------

    #[test]
    fn caps_roundtrip(caps in arb_caps()) {
        let s = caps.to_caps_string();
        prop_assert_eq!(Caps::parse(&s).unwrap(), caps);
    }

    #[test]
    fn router_address_roundtrip(addr in arb_address()) {
        let mut w = i2pscope::data::codec::Writer::new();
        addr.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = i2pscope::data::codec::Reader::new(&bytes);
        prop_assert_eq!(RouterAddress::decode(&mut r).unwrap(), addr);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn routerinfo_roundtrip_and_verify(seed in any::<u64>(), published in any::<u32>(),
                                       caps in arb_caps(),
                                       addrs in proptest::collection::vec(arb_address(), 0..3)) {
        let mut rng = DetRng::new(seed);
        let (ident, secrets) = RouterIdentity::generate(&mut rng);
        let ri = RouterInfo::new_signed(ident, &secrets, SimTime(published as u64), addrs, caps, "0.9.34");
        prop_assert!(ri.verify());
        let back = RouterInfo::decode(&ri.encode()).unwrap();
        prop_assert!(back.verify());
        prop_assert_eq!(back, ri);
    }

    #[test]
    fn routerinfo_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = RouterInfo::decode(&bytes);
    }

    #[test]
    fn leaseset_roundtrip(seed in any::<u64>(), n in 0usize..16, end in any::<u32>()) {
        let mut rng = DetRng::new(seed);
        let (dest, secrets) = RouterIdentity::generate(&mut rng);
        let leases: Vec<Lease> = (0..n).map(|i| Lease {
            gateway: Hash256::digest(&[i as u8]),
            tunnel_id: i as u32,
            end_date: SimTime(end as u64),
        }).collect();
        let ls = LeaseSet::new_signed(dest, &secrets, leases);
        prop_assert!(ls.verify());
        prop_assert_eq!(LeaseSet::decode(&ls.encode()).unwrap(), ls);
    }

    #[test]
    fn eep_request_response_roundtrip(id in any::<u64>(), tid in any::<u32>(), key in any::<u64>(),
                                      body in proptest::collection::vec(any::<u8>(), 0..200)) {
        let req = EepRequest {
            request_id: id,
            path: "/index.html".to_string(),
            reply_gateway: Hash256::digest(&id.to_be_bytes()),
            reply_tunnel: tid,
            reply_key: i2pscope::crypto::elgamal::ElGamalPublic(key),
        };
        prop_assert_eq!(EepRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        let resp = EepResponse { request_id: id, body };
        prop_assert_eq!(EepResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
    }

    // ---- tunnels -------------------------------------------------------

    #[test]
    fn layered_encryption_roundtrips(seed in any::<u64>(), hops in 0usize..=7,
                                     payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut rng = DetRng::new(seed);
        let keys: Vec<[u8; 32]> = (0..hops).map(|_| {
            let mut k = [0u8; 32];
            rng.fill_bytes(&mut k);
            k
        }).collect();
        let tk = TunnelKeys::new(keys);
        let wrapped = tk.wrap(seed, &payload);
        prop_assert_eq!(tk.transit(wrapped), payload);
    }

    #[test]
    fn garlic_bundles_roundtrip(seed in any::<u64>(),
                                payloads in proptest::collection::vec(
                                    proptest::collection::vec(any::<u8>(), 0..64), 0..6)) {
        let kp = i2pscope::crypto::ElGamalKeyPair::from_secret_material(seed | 1);
        let mut rng = DetRng::new(seed);
        let cloves: Vec<Clove> = payloads.into_iter().enumerate().map(|(i, p)| Clove {
            instructions: match i % 3 {
                0 => DeliveryInstructions::Local,
                1 => DeliveryInstructions::Router(Hash256::digest(&[i as u8])),
                _ => DeliveryInstructions::Tunnel {
                    gateway: Hash256::digest(&[i as u8, 1]),
                    tunnel_id: i as u32,
                },
            },
            payload: p,
        }).collect();
        let msg = GarlicMessage::seal(&cloves, kp.public, &mut rng);
        prop_assert_eq!(msg.open(&kp).unwrap(), cloves);
    }

    // ---- k-buckets -----------------------------------------------------

    #[test]
    fn kbucket_closest_is_truly_closest(seeds in proptest::collection::hash_set(any::<u32>(), 5..80),
                                        target in any::<u32>()) {
        let local = Hash256::digest(b"local");
        let mut table = KBucketTable::new(local);
        let mut inserted = Vec::new();
        for s in &seeds {
            let h = Hash256::digest(&s.to_be_bytes());
            if table.insert(h) {
                inserted.push(h);
            }
        }
        let t = Hash256::digest(&target.to_be_bytes());
        let closest = table.closest(&t, 3);
        // Brute-force check.
        inserted.sort_by_key(|h| h.distance(&t));
        let expect: Vec<_> = inserted.iter().take(3).copied().collect();
        prop_assert_eq!(closest, expect);
    }

    // ---- blocklist -----------------------------------------------------

    #[test]
    fn blocklist_window_semantics(window in 1u64..40, seen in 0u64..50, query in 0u64..100) {
        let mut bl = BlockList::new(window);
        bl.observe(PeerIp::V4(1), seen);
        let blocked = bl.is_blocked(&PeerIp::V4(1), query);
        let expect = query >= seen && query - seen < window;
        prop_assert_eq!(blocked, expect);
    }

    // ---- reseed determinism ---------------------------------------------

    #[test]
    fn reseed_same_source_same_answer(seed in any::<u64>(), src in any::<u32>()) {
        let mut rng = DetRng::new(seed);
        let routers: Vec<RouterInfo> = (0..120).map(|_| {
            let (ident, secrets) = RouterIdentity::generate(&mut rng);
            RouterInfo::new_signed(ident, &secrets, SimTime(1), vec![],
                                   Caps::standard(BandwidthClass::L), "0.9.34")
        }).collect();
        let mut srv = i2pscope::router::ReseedServer::new(seed);
        srv.set_known(routers);
        let a = srv.answer(PeerIp::V4(src));
        let b = srv.answer(PeerIp::V4(src));
        prop_assert_eq!(a, b);
    }
}
