//! Adversary registry + composition determinism suite (DESIGN.md §9).
//!
//! The trait refactor's contract: the five registered paper attacks are
//! *plumbing* over the legacy entrypoints, not reimplementations — so
//! each trait-path figure must be byte-identical to the legacy oracle
//! run with the same grid. On top of that, the composed scenarios pin
//! the lab-wide determinism guarantees: rebuild ≡ rerun bit for bit,
//! 1 ≡ N sweep threads, and capture → store → replay roundtrips with
//! identical figures.

use i2pscope::cli::{self, FigId, Format};
use i2pscope::measure::adversary::{
    parse_spec, Adversary, AdversaryLab, Bridges, Censor, ClosedLoop, Deanon, SybilEclipse,
};
use i2pscope::measure::{attack, bridges, censor, closedloop, report, sybil, Fleet};
use i2pscope::sim::world::{World, WorldConfig};
use i2pscope::store::Snapshot;

fn fixture() -> (World, Fleet) {
    (World::generate(WorldConfig { days: 8, scale: 0.03, seed: 67 }), Fleet::alternating(6))
}

fn lab_over<'w>(world: &'w World, fleet: &'w Fleet, threads: usize) -> AdversaryLab<'w> {
    AdversaryLab::new(world, fleet, 0..world.config.days, threads)
}

// ---- legacy ↔ trait byte-identical figures ----------------------------

#[test]
fn censor_trait_path_matches_legacy_oracle() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 1);
    let run = Censor.run(&lab);
    let series = censor::blocking_matrix(
        &world,
        &fleet,
        lab.eval_day,
        &Censor::router_grid(&lab),
        &Censor::window_grid(&lab),
    );
    assert_eq!(run.figure, report::render_fig13(&series));
    assert_eq!(run.csv, report::csv_fig13(&series));
}

#[test]
fn deanon_trait_path_matches_legacy_oracle() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 1);
    let run = Deanon.run(&lab);
    // The serial per-cell oracle re-derives the victim view and engine
    // fill for every grid cell — the strongest cross-check available.
    let outcomes: Vec<_> = Deanon::grid(&lab)
        .iter()
        .map(|s| {
            attack::simulate_attack(
                &world,
                &fleet,
                lab.eval_day,
                s.censor_routers,
                s.window_days,
                s.n_malicious,
                Deanon::TUNNELS,
                lab.seed,
            )
        })
        .collect();
    assert_eq!(run.figure, attack::render_attack_sweep(&outcomes));
    assert_eq!(run.csv, attack::csv_attack_sweep(&outcomes));
}

#[test]
fn closedloop_trait_path_matches_legacy_oracle() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 1);
    let run = ClosedLoop.run(&lab);
    let outcomes = closedloop::closed_loop_sweep(
        &world,
        &fleet,
        &lab.usability,
        &ClosedLoop::grid(&lab),
        lab.eval_day,
    );
    assert_eq!(run.figure, closedloop::render_closed_loop(&outcomes));
    assert_eq!(run.csv, closedloop::csv_closed_loop(&outcomes));
}

#[test]
fn sybil_trait_path_matches_legacy_oracle() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 1);
    let run = SybilEclipse.run(&lab);
    let sweep = sybil::run(&world, &fleet, &SybilEclipse::config(&lab));
    assert_eq!(run.figure, report::render_sybil(&sweep));
    assert_eq!(run.csv, report::csv_sybil(&sweep));
}

#[test]
fn bridges_trait_path_matches_legacy_oracle() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 1);
    let run = Bridges.run(&lab);
    // The serial oracle harvests two blacklists per strategy from
    // scratch instead of sharing one engine fill.
    let horizon = Bridges::horizon(&lab);
    let outcomes = bridges::compare_strategies(
        &world,
        &fleet,
        lab.eval_day - horizon,
        horizon,
        Bridges::N_BRIDGES,
        fleet.vantages.len(),
        lab.seed,
    );
    assert_eq!(run.figure, bridges::render_bridge_comparison(&outcomes));
    assert_eq!(run.csv, bridges::csv_bridge_comparison(&outcomes));
}

// ---- composition determinism ------------------------------------------

#[test]
fn composed_scenarios_rebuild_bit_identical() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 2);
    for spec in ["sybil+censor", "adaptive", "geo", "sybil+adaptive"] {
        let a = parse_spec(spec).expect("spec parses").run(&lab);
        let b = parse_spec(spec).expect("spec parses").run(&lab);
        // A freshly parsed chain must replay the first run bit for bit
        // — figure, csv, audit line, every metric.
        assert_eq!(a, b, "rebuild of {spec:?} diverged");
        assert_eq!(a.audit_line(), b.audit_line(), "audit of {spec:?} diverged");
    }
}

#[test]
fn every_registered_adversary_is_thread_count_independent() {
    let (world, fleet) = fixture();
    let serial = lab_over(&world, &fleet, 1);
    let threaded = lab_over(&world, &fleet, 4);
    for name in i2pscope::measure::adversary::registry::NAMES {
        let a = parse_spec(name).expect("registered").run(&serial);
        let b = parse_spec(name).expect("registered").run(&threaded);
        // Outcomes deliberately never echo the thread count, so the
        // whole outcome — audit line included — must be equal.
        assert_eq!(a, b, "adversary {name:?} drifted across thread counts");
    }
}

#[test]
fn composed_capture_roundtrips_through_the_store() {
    let (world, fleet) = fixture();
    let lab = lab_over(&world, &fleet, 1);
    let adv = parse_spec("sybil+censor").expect("preset");
    let engine = adv.capture(&lab);
    let snapshot = Snapshot::capture(&engine);
    let replayed = Snapshot::from_bytes(&snapshot.to_bytes().expect("encode")).expect("roundtrip decodes");
    assert_eq!(snapshot.total_rows(), replayed.total_rows());
    // The replayed snapshot must drive the figure pipeline to the same
    // bytes as the live eclipsed engine.
    let live = cli::render_figures(&engine, Format::Text, &FigId::ALL);
    let replay = cli::render_figures(&replayed, Format::Text, &FigId::ALL);
    assert!(!live.is_empty());
    assert_eq!(live, replay, "capture → store → replay drifted from the live engine");
}
