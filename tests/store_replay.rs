//! Round-trip fidelity of the dataset store: figures rendered from a
//! loaded snapshot must be **byte-identical** to figures rendered from
//! the live `World`/`HarvestEngine` that produced it, in both output
//! formats — the acceptance contract of the persistence subsystem.

use i2pscope::cli::{self, FigId, Format};
use i2pscope::measure::fleet::Fleet;
use i2pscope::measure::HarvestEngine;
use i2pscope::sim::world::{World, WorldConfig};
use i2pscope::store::Snapshot;

fn setup() -> (World, Fleet) {
    (
        World::generate(WorldConfig { days: 8, scale: 0.03, seed: 20_180_201 }),
        Fleet::alternating(6),
    )
}

#[test]
fn replayed_figures_byte_match_live_figures() {
    let (world, fleet) = setup();
    let engine = HarvestEngine::build(&world, &fleet, 0..8);
    let snapshot = Snapshot::capture(&engine);
    // Through the full wire format, not just the in-memory capture.
    let loaded = Snapshot::from_bytes(&snapshot.to_bytes().expect("encode")).expect("wire roundtrip");
    for format in [Format::Text, Format::Csv] {
        let live = cli::render_figures(&engine, format, &FigId::ALL);
        let replayed = cli::render_figures(&loaded, format, &FigId::ALL);
        assert!(!live.is_empty());
        assert_eq!(live, replayed, "live vs replayed {format:?} figures diverged");
    }
}

#[test]
fn snapshot_metadata_round_trips() {
    let (world, fleet) = setup();
    let engine = HarvestEngine::build(&world, &fleet, 2..7);
    let snapshot = Snapshot::capture(&engine);
    let loaded = Snapshot::from_bytes(&snapshot.to_bytes().expect("encode")).expect("wire roundtrip");
    let meta = loaded.meta();
    assert_eq!(meta.world_days, world.config.days);
    assert_eq!(meta.world_scale, world.config.scale);
    assert_eq!(meta.world_seed, world.config.seed);
    assert_eq!(meta.total_peers, world.total_peers() as u64);
    assert_eq!(meta.day_start, 2);
    assert_eq!(meta.n_days, 5);
    assert_eq!(meta.vantages, fleet.vantages);
}

#[test]
fn archived_router_infos_decode_and_verify() {
    let (world, fleet) = setup();
    let engine = HarvestEngine::build(&world, &fleet, 3..5);
    let loaded =
        Snapshot::from_bytes(&Snapshot::capture(&engine).to_bytes().expect("encode")).expect("wire roundtrip");
    let verified = loaded.verify_router_infos().expect("all wire records verify");
    assert_eq!(verified, loaded.total_rows());
    assert!(verified > 0, "a non-trivial world archives rows");
}

#[test]
fn corrupt_and_truncated_snapshots_are_rejected() {
    let (world, fleet) = setup();
    let engine = HarvestEngine::build(&world, &fleet, 0..2);
    let bytes = Snapshot::capture(&engine).to_bytes().expect("encode");
    // Flip one byte in the middle of the row table.
    let mut bad = bytes.clone();
    let mid = bytes.len() / 2;
    bad[mid] ^= 0x40;
    assert!(Snapshot::from_bytes(&bad).is_err(), "mid-file corruption must fail");
    // Cut the trailer off.
    assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 10]).is_err());
    // Wrong version byte.
    let mut bad = bytes.clone();
    bad[8] ^= 0xFF; // the u16 version follows the 8-byte magic
    assert!(Snapshot::from_bytes(&bad).is_err());
}

#[test]
fn file_round_trip_through_disk() {
    let (world, fleet) = setup();
    let engine = HarvestEngine::build(&world, &fleet, 0..3);
    let snapshot = Snapshot::capture(&engine);
    let dir = std::env::temp_dir().join("i2pscope-store-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.i2ps");
    snapshot.write_to(&path).expect("write");
    let loaded = Snapshot::read_from(&path).expect("read");
    assert_eq!(loaded.total_rows(), snapshot.total_rows());
    assert_eq!(
        cli::render_figures(&snapshot, Format::Csv, &FigId::ALL),
        cli::render_figures(&loaded, Format::Csv, &FigId::ALL)
    );
    std::fs::remove_file(&path).ok();
}
